"""Tests for the adaptive-incremental baseline, BN recalibration and profile persistence."""

import numpy as np
import pytest

from repro import nn
from repro.accelerator import FaultMap
from repro.core import (
    ChipPopulation,
    load_profile,
    run_adaptive_campaign,
    save_profile,
)
from repro.core.adaptive import adaptive_retrain_chip
from repro.mitigation import apply_fap, recalibrate_batchnorm, reset_batchnorm_stats
from repro.training import Trainer, TrainingConfig, evaluate_accuracy

from tests.test_profiles import make_profile


class TestAdaptiveRetraining:
    @pytest.fixture()
    def framework(self, smoke_context):
        framework = smoke_context.framework()
        framework.analyze_resilience()
        return framework

    def test_adaptive_chip_meets_or_exhausts_budget(self, framework, smoke_context):
        population = ChipPopulation.generate(
            2, *smoke_context.array.shape, fault_rates=[0.0, 0.3], seed=5
        )
        clean_chip_result, clean_evals = adaptive_retrain_chip(framework, population[0], [0.25, 1.0])
        # A fault-free chip needs no retraining and only the initial evaluation.
        assert clean_chip_result.epochs_trained == 0.0
        assert clean_evals == 1
        assert clean_chip_result.meets_constraint

        faulty_result, faulty_evals = adaptive_retrain_chip(framework, population[1], [0.25, 1.0])
        assert faulty_evals >= 1
        assert faulty_result.epochs_trained <= 1.0 + 1e-6
        if not faulty_result.meets_constraint:
            # Budget exhausted: it must have trained up to the full schedule.
            assert faulty_result.epochs_trained == pytest.approx(1.0, rel=0.05)

    def test_adaptive_campaign_bookkeeping(self, framework, smoke_context):
        population = ChipPopulation.generate(
            3, *smoke_context.array.shape, fault_rates=(0.0, 0.25), seed=6
        )
        result = run_adaptive_campaign(framework, population, increments=[0.25, 1.0])
        assert result.campaign.policy_name == "adaptive-incremental"
        assert result.campaign.num_chips == 3
        assert set(result.evaluations_per_chip) == {chip.chip_id for chip in population}
        assert result.total_evaluations >= 3  # at least the initial evaluation per chip
        assert result.average_evaluations >= 1.0

    def test_invalid_increments(self, framework, smoke_context):
        population = ChipPopulation.generate(1, *smoke_context.array.shape, seed=0)
        with pytest.raises(ValueError):
            adaptive_retrain_chip(framework, population[0], [])


class TestBatchNormCalibration:
    def _bn_model(self, seed=0):
        return nn.Sequential(
            nn.Conv2d(2, 4, 3, padding=1, bias=False, rng=seed),
            nn.BatchNorm2d(4),
            nn.ReLU(),
            nn.Flatten(),
            nn.Linear(4 * 8 * 8, 4, rng=seed + 1),
        )

    def test_reset_batchnorm_stats(self):
        model = self._bn_model()
        bn = model[1]
        bn.running_mean = np.full(4, 3.0, dtype=np.float32)
        assert reset_batchnorm_stats(model) == 1
        np.testing.assert_allclose(bn.running_mean, np.zeros(4))
        np.testing.assert_allclose(bn.running_var, np.ones(4))

    def test_recalibration_updates_stats_without_touching_weights(self, image_bundle):
        model = self._bn_model()
        weights_before = model[0].weight.data.copy()
        used = recalibrate_batchnorm(model, image_bundle.train, num_batches=2, batch_size=16)
        assert used == 2
        assert not np.allclose(model[1].running_mean, 0.0)
        np.testing.assert_allclose(model[0].weight.data, weights_before)

    def test_recalibration_restores_mode_and_momentum(self, image_bundle):
        model = self._bn_model()
        model.eval()
        original_momentum = model[1].momentum
        recalibrate_batchnorm(model, image_bundle.train, num_batches=1, momentum=0.5)
        assert not model.training
        assert model[1].momentum == original_momentum

    def test_no_batchnorm_is_noop(self, image_bundle, small_mlp):
        assert recalibrate_batchnorm(small_mlp, image_bundle.train) == 0

    def test_recalibration_helps_after_fap(self, image_bundle):
        """After pruning, recalibrated BN statistics should not hurt accuracy."""
        model = self._bn_model(seed=3)
        config = TrainingConfig(learning_rate=0.05, batch_size=16, seed=0)
        Trainer(model, image_bundle.train, image_bundle.test, config).train(3.0)
        apply_fap(model, FaultMap.random(16, 16, 0.4, seed=2))
        stale = evaluate_accuracy(model, image_bundle.test)
        recalibrate_batchnorm(model, image_bundle.train)
        recalibrated = evaluate_accuracy(model, image_bundle.test)
        assert recalibrated >= stale - 0.1


class TestProfilePersistence:
    def test_save_and_load_round_trip(self, tmp_path):
        profile = make_profile()
        path = tmp_path / "profiles" / "resilience.json"
        save_profile(profile, path)
        restored = load_profile(path)
        np.testing.assert_allclose(restored.accuracies, profile.accuracies)
        np.testing.assert_allclose(restored.epoch_checkpoints, profile.epoch_checkpoints)
        assert restored.clean_accuracy == profile.clean_accuracy
        # Lookups behave identically after the round trip.
        assert restored.epochs_required(0.15, 0.93, statistic="max") == profile.epochs_required(
            0.15, 0.93, statistic="max"
        )
