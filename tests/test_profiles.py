"""Tests for ResilienceProfile lookups (pure data manipulation, no training)."""

import numpy as np
import pytest

from repro.core import ResilienceProfile


def make_profile():
    """A hand-crafted profile with known epochs-required behaviour.

    Grid: fault rates [0, 0.1, 0.2], 2 trials, checkpoints [0, 0.5, 1, 2].
    Accuracy rises with retraining and falls with fault rate; trial 1 is
    always slightly worse than trial 0 so min/mean/max differ.
    """
    fault_rates = np.array([0.0, 0.1, 0.2])
    checkpoints = np.array([0.0, 0.5, 1.0, 2.0])
    accuracies = np.zeros((3, 2, 4))
    # rate 0.0: always at clean accuracy.
    accuracies[0, :, :] = 0.95
    # rate 0.1: trial 0 recovers by 0.5 epochs, trial 1 by 1.0 epochs.
    accuracies[1, 0] = [0.80, 0.93, 0.94, 0.95]
    accuracies[1, 1] = [0.75, 0.88, 0.93, 0.95]
    # rate 0.2: trial 0 recovers at 1.0, trial 1 only at 2.0.
    accuracies[2, 0] = [0.60, 0.85, 0.93, 0.95]
    accuracies[2, 1] = [0.55, 0.80, 0.88, 0.93]
    return ResilienceProfile(
        fault_rates=fault_rates,
        epoch_checkpoints=checkpoints,
        accuracies=accuracies,
        clean_accuracy=0.95,
    )


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceProfile(
                fault_rates=np.array([0.2, 0.1]),
                epoch_checkpoints=np.array([0.0, 1.0]),
                accuracies=np.zeros((2, 1, 2)),
                clean_accuracy=0.9,
            )
        with pytest.raises(ValueError):
            ResilienceProfile(
                fault_rates=np.array([0.1]),
                epoch_checkpoints=np.array([0.0, 1.0]),
                accuracies=np.zeros((1, 2)),
                clean_accuracy=0.9,
            )
        with pytest.raises(ValueError):
            ResilienceProfile(
                fault_rates=np.array([0.1]),
                epoch_checkpoints=np.array([0.0]),
                accuracies=np.zeros((1, 1, 1)),
                clean_accuracy=1.5,
            )

    def test_basic_properties(self):
        profile = make_profile()
        assert profile.num_trials == 2
        assert profile.max_epochs == 2.0
        assert "ResilienceProfile" in repr(profile)


class TestAccuracyViews:
    def test_accuracy_vs_fault_rate(self):
        profile = make_profile()
        no_retraining = profile.accuracy_vs_fault_rate(0.0, "mean")
        np.testing.assert_allclose(no_retraining, [0.95, 0.775, 0.575])
        full = profile.accuracy_vs_fault_rate(2.0, "min")
        np.testing.assert_allclose(full, [0.95, 0.95, 0.93])

    def test_accuracy_surface_shape(self):
        profile = make_profile()
        assert profile.accuracy_surface("max").shape == (3, 4)

    def test_unknown_statistic(self):
        with pytest.raises(ValueError):
            make_profile().accuracy_vs_fault_rate(0.0, statistic="mode")


class TestEpochsRequired:
    def test_per_trial_requirements(self):
        profile = make_profile()
        assert profile.epochs_required_trials(1, 0.93) == [0.5, 1.0]
        assert profile.epochs_required_trials(2, 0.93) == [1.0, 2.0]

    def test_unreachable_target(self):
        profile = make_profile()
        assert profile.epochs_required_trials(2, 0.99) == [None, None]
        assert profile.epochs_required_at_grid_rate(2, 0.99, unreachable="none") is None
        assert profile.epochs_required_at_grid_rate(2, 0.99, unreachable="max_epochs") == 2.0
        with pytest.raises(ValueError):
            profile.epochs_required_at_grid_rate(2, 0.99, unreachable="explode")

    def test_statistics(self):
        profile = make_profile()
        assert profile.epochs_required_at_grid_rate(1, 0.93, statistic="max") == 1.0
        assert profile.epochs_required_at_grid_rate(1, 0.93, statistic="min") == 0.5
        assert profile.epochs_required_at_grid_rate(1, 0.93, statistic="mean") == 0.75

    def test_curve(self):
        profile = make_profile()
        assert profile.epochs_required_curve(0.93, statistic="max") == [0.0, 1.0, 2.0]

    def test_off_grid_interpolation_modes(self):
        profile = make_profile()
        ceil = profile.epochs_required(0.15, 0.93, statistic="max", interpolation="ceil")
        floor = profile.epochs_required(0.15, 0.93, statistic="max", interpolation="floor")
        linear = profile.epochs_required(0.15, 0.93, statistic="max", interpolation="linear")
        assert ceil == 2.0 and floor == 1.0
        assert linear == pytest.approx(1.5)

    def test_off_grid_clamping(self):
        profile = make_profile()
        assert profile.epochs_required(0.0, 0.93) == 0.0
        assert profile.epochs_required(0.9, 0.93) == 2.0  # beyond the grid: use last rate

    def test_requirement_monotone_in_target(self):
        profile = make_profile()
        easy = profile.epochs_required(0.2, 0.80, statistic="max")
        hard = profile.epochs_required(0.2, 0.93, statistic="max")
        assert hard >= easy

    def test_validation(self):
        profile = make_profile()
        with pytest.raises(ValueError):
            profile.epochs_required(1.5, 0.9)
        with pytest.raises(ValueError):
            profile.epochs_required(0.1, 0.9, interpolation="spline")
        with pytest.raises(IndexError):
            profile.epochs_required_trials(9, 0.9)


class TestSerialization:
    def test_round_trip(self):
        profile = make_profile()
        profile.metadata["note"] = "test"
        restored = ResilienceProfile.from_dict(profile.to_dict())
        np.testing.assert_allclose(restored.accuracies, profile.accuracies)
        np.testing.assert_allclose(restored.fault_rates, profile.fault_rates)
        assert restored.clean_accuracy == profile.clean_accuracy
        assert restored.metadata["note"] == "test"

    def test_round_trip_through_json(self, tmp_path):
        import json

        profile = make_profile()
        path = tmp_path / "profile.json"
        path.write_text(json.dumps(profile.to_dict()))
        restored = ResilienceProfile.from_dict(json.loads(path.read_text()))
        assert restored.max_epochs == profile.max_epochs
