"""Tests for reporting tables, Pareto analysis, statistics and ASCII plots."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    bootstrap_mean_interval,
    dominates,
    histogram,
    hypervolume_2d,
    line_plot,
    mean_confidence_interval,
    pareto_front,
    pareto_mask,
    relative_change,
    scatter_plot,
    summarize,
)
from repro.core.reduce import CampaignResult, ChipRetrainingResult
from repro.core.reporting import (
    campaign_scatter_csv,
    campaign_summary_table,
    constraint_satisfaction_report,
    format_table,
)


def make_campaign(name="policy-a", epochs=(0.1, 0.2), accuracies=(0.9, 0.95), target=0.92):
    results = [
        ChipRetrainingResult(
            chip_id=f"chip-{i}",
            fault_rate=0.1 * (i + 1),
            epochs_allocated=e,
            epochs_trained=e,
            accuracy_before=a - 0.1,
            accuracy_after=a,
            meets_constraint=a >= target,
            masked_weight_fraction=0.1,
        )
        for i, (e, a) in enumerate(zip(epochs, accuracies))
    ]
    return CampaignResult(policy_name=name, target_accuracy=target, clean_accuracy=0.97, results=results)


class TestReporting:
    def test_format_table(self):
        table = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        with pytest.raises(ValueError):
            format_table(["a"], [["1", "2"]])

    def test_campaign_summary_table(self):
        table = campaign_summary_table([make_campaign("a"), make_campaign("b", epochs=(0.3, 0.3))])
        assert "a" in table and "b" in table
        assert "avg epochs/chip" in table
        with pytest.raises(ValueError):
            campaign_summary_table([])

    def test_scatter_csv(self):
        csv_text = campaign_scatter_csv(make_campaign())
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("chip_id,")
        assert len(lines) == 3

    def test_constraint_report(self):
        report = constraint_satisfaction_report(make_campaign())
        assert report["policy"] == "policy-a"
        assert report["chips"] == 2
        assert report["pct_meeting"] == pytest.approx(50.0)

    def test_chip_result_recovery(self):
        result = make_campaign().results[0]
        assert result.accuracy_recovered == pytest.approx(0.1)


class TestPareto:
    def test_mask_simple(self):
        costs = [1.0, 2.0, 3.0]
        qualities = [50.0, 80.0, 70.0]
        mask = pareto_mask(costs, qualities)
        np.testing.assert_array_equal(mask, [True, True, False])

    def test_mask_with_duplicates(self):
        mask = pareto_mask([1.0, 1.0], [5.0, 5.0])
        assert mask.sum() >= 1

    def test_front_sorted_by_cost(self):
        points = [
            {"name": "a", "cost": 3.0, "quality": 90.0},
            {"name": "b", "cost": 1.0, "quality": 60.0},
            {"name": "c", "cost": 2.0, "quality": 50.0},
        ]
        front = pareto_front(points, "cost", "quality")
        assert [p["name"] for p in front] == ["b", "a"]
        assert pareto_front([], "cost", "quality") == []

    def test_dominates(self):
        assert dominates(1.0, 90.0, 2.0, 80.0)
        assert not dominates(2.0, 80.0, 1.0, 90.0)
        assert not dominates(1.0, 90.0, 1.0, 90.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            pareto_mask([1.0, 2.0], [1.0])

    def test_hypervolume(self):
        volume = hypervolume_2d([0.5, 1.0], [80.0, 100.0], reference_cost=2.0)
        assert volume > 0
        assert hypervolume_2d([3.0], [50.0], reference_cost=2.0) == 0.0


class TestStatistics:
    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0 and stats.maximum == 4.0
        assert stats.median == pytest.approx(2.5)
        assert stats.count == 4
        assert set(stats.as_dict()) == {"count", "mean", "std", "min", "median", "max"}
        with pytest.raises(ValueError):
            summarize([])

    def test_single_value_summary(self):
        assert summarize([5.0]).std == 0.0

    def test_confidence_interval_contains_mean(self):
        mean, low, high = mean_confidence_interval([1.0, 2.0, 3.0, 4.0, 5.0])
        assert low <= mean <= high
        assert mean == pytest.approx(3.0)
        with pytest.raises(ValueError):
            mean_confidence_interval([], confidence=0.95)
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0], confidence=1.5)

    def test_confidence_interval_single_sample(self):
        mean, low, high = mean_confidence_interval([2.0])
        assert mean == low == high == 2.0

    def test_bootstrap_interval(self):
        mean, low, high = bootstrap_mean_interval(list(range(20)), seed=0)
        assert low <= mean <= high
        with pytest.raises(ValueError):
            bootstrap_mean_interval([])

    def test_relative_change(self):
        assert relative_change(2.0, 3.0) == pytest.approx(0.5)
        assert relative_change(0.0, 3.0) == 0.0


class TestAsciiPlots:
    def test_line_plot_contains_series_markers(self):
        text = line_plot([0, 1, 2], {"a": [1, 2, 3], "b": [3, 2, 1]}, title="demo")
        assert "demo" in text
        assert "legend" in text
        assert "o" in text and "x" in text

    def test_line_plot_validation(self):
        with pytest.raises(ValueError):
            line_plot([], {})
        with pytest.raises(ValueError):
            line_plot([0, 1], {"a": [1.0]})

    def test_line_plot_constant_series(self):
        text = line_plot([0, 1], {"flat": [1.0, 1.0]})
        assert "flat" in text

    def test_scatter_plot(self):
        text = scatter_plot({"points": ([0.1, 0.2, 0.3], [1.0, 2.0, 3.0])}, title="sc")
        assert "sc" in text and "legend" in text
        with pytest.raises(ValueError):
            scatter_plot({})

    def test_histogram(self):
        text = histogram([1, 1, 2, 3, 3, 3], bins=3, title="h")
        assert "h" in text
        assert "#" in text
        with pytest.raises(ValueError):
            histogram([])


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=10.0),
            st.floats(min_value=0.0, max_value=100.0),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_pareto_front_members_are_not_dominated(points):
    """Property: no Pareto-front member is dominated by any other point."""
    costs = [p[0] for p in points]
    qualities = [p[1] for p in points]
    mask = pareto_mask(costs, qualities)
    assert mask.any()  # at least one point always survives
    for index, keep in enumerate(mask):
        if keep:
            assert not any(
                dominates(costs[j], qualities[j], costs[index], qualities[index])
                for j in range(len(points))
            )
