"""Shared pytest fixtures and helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_blob_classification, make_class_template_images
from repro.experiments import ExperimentContext, smoke_preset
from repro.models import MLP
from tests.helpers import numeric_gradient  # noqa: F401  (re-exported for fixtures/tests)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def blob_bundle():
    """Tiny Gaussian-blob classification problem (fast MLP workloads)."""
    return make_blob_classification(
        num_classes=3, features=8, train_per_class=30, test_per_class=15, cluster_std=0.8, seed=0
    )


@pytest.fixture(scope="session")
def image_bundle():
    """Tiny synthetic image-classification problem."""
    return make_class_template_images(
        num_classes=4,
        train_per_class=16,
        test_per_class=8,
        image_size=8,
        channels=2,
        noise_std=0.3,
        shift_pixels=0,
        seed=1,
    )


@pytest.fixture
def small_mlp(image_bundle):
    features = int(np.prod(image_bundle.input_shape))
    return MLP(features, image_bundle.num_classes, hidden_sizes=(32,), seed=3)


@pytest.fixture(scope="session")
def smoke_context():
    """Pre-trained experiment context at smoke scale (shared across tests)."""
    return ExperimentContext.from_preset(smoke_preset())
