"""Tests for the parallel campaign engine, its store, and the disk cache."""

from __future__ import annotations

import dataclasses
import json
import os
import pickle

import pytest

from repro.campaign import (
    CampaignEngine,
    CampaignStore,
    CampaignStoreError,
    ChipJob,
    build_jobs,
    campaign_fingerprint,
    execute_job,
    plan_job_chunks,
)
from repro.campaign.store import decode_result_line
from repro.cli import main
from repro.core.chips import ChipPopulation
from repro.core.selection import FixedEpochPolicy
from repro.experiments import ExperimentContext, smoke_preset
from repro.nn.serialization import state_dicts_equal


@pytest.fixture(scope="module")
def population(smoke_context):
    preset = smoke_context.preset
    return ChipPopulation.generate(
        count=4,
        rows=preset.array_rows,
        cols=preset.array_cols,
        fault_rates=(0.05, 0.25),
        seed=123,
    )


@pytest.fixture
def framework(smoke_context):
    return smoke_context.framework()


class TestChipJob:
    def test_jobs_are_picklable_and_json_round_trip(self, framework, population):
        jobs = build_jobs(framework, population, FixedEpochPolicy(0.25))
        assert [job.chip_id for job in jobs] == [chip.chip_id for chip in population]
        for job in jobs:
            assert pickle.loads(pickle.dumps(job)) == job
            assert ChipJob.from_dict(json.loads(json.dumps(job.to_dict()))) == job

    def test_execution_is_deterministic(self, framework, population):
        job = build_jobs(framework, population, FixedEpochPolicy(0.25))[0]
        first = execute_job(framework, job)
        second = execute_job(framework, job)
        assert first == second
        assert first.epochs_allocated == 0.25

    def test_negative_epochs_rejected(self):
        with pytest.raises(ValueError):
            ChipJob(chip={"chip_id": "c"}, epochs=-1.0, target_accuracy=0.9, policy_name="p")

    def test_result_round_trips_through_dict(self, framework, population):
        job = build_jobs(framework, population, FixedEpochPolicy(0.25))[0]
        result = execute_job(framework, job)
        restored = type(result).from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored == result


class TestPlanner:
    def _jobs(self, budgets):
        return [
            ChipJob(
                chip={"chip_id": f"chip-{i}"},
                epochs=budget,
                target_accuracy=0.9,
                policy_name="p",
            )
            for i, budget in enumerate(budgets)
        ]

    def test_same_budget_groups_chunked_by_fat_batch(self):
        jobs = self._jobs([0.5, 0.5, 0.5, 0.5, 0.5])
        plan = plan_job_chunks(jobs, fat_batch=2)
        assert [len(chunk) for chunk in plan] == [2, 2, 1]
        assert [job.chip_id for chunk in plan for job in chunk] == [
            job.chip_id for job in jobs
        ]

    def test_zero_epoch_and_singleton_budgets_stay_per_job(self):
        jobs = self._jobs([0.0, 0.0, 0.25, 0.5, 0.5])
        plan = plan_job_chunks(jobs, fat_batch=8)
        sizes = {tuple(job.chip_id for job in chunk): len(chunk) for chunk in plan}
        # zero-epoch lookups and the lone 0.25 budget are single-job chunks;
        # the 0.5 pair is one batched chunk.
        assert sorted(sizes.values()) == [1, 1, 1, 2]
        # no chip lost or duplicated
        planned = [job.chip_id for chunk in plan for job in chunk]
        assert sorted(planned) == sorted(job.chip_id for job in jobs)

    def test_plan_splits_large_groups_across_workers(self):
        # One 24-chip budget group at fat_batch=8 would be 3 chunks — too few
        # for 4 workers; worker-aware planning caps chunks at ceil(24/4)=6.
        jobs = self._jobs([0.5] * 24)
        plan = plan_job_chunks(jobs, fat_batch=8, workers=4)
        assert [len(chunk) for chunk in plan] == [6, 6, 6, 6]
        # More workers than jobs in a group degrades gracefully to per-job.
        small = plan_job_chunks(self._jobs([0.5] * 3), fat_batch=8, workers=8)
        assert [len(chunk) for chunk in small] == [1, 1, 1]
        with pytest.raises(ValueError):
            plan_job_chunks(jobs, fat_batch=8, workers=0)

    def test_fat_batch_one_disables_coalescing(self):
        jobs = self._jobs([0.5, 0.5, 0.5])
        plan = plan_job_chunks(jobs, fat_batch=1)
        assert [len(chunk) for chunk in plan] == [1, 1, 1]

    def test_planning_is_deterministic(self):
        jobs = self._jobs([0.5, 0.25, 0.5, 0.25, 0.5])
        first = plan_job_chunks(jobs, fat_batch=2)
        second = plan_job_chunks(jobs, fat_batch=2)
        assert first == second

    def test_invalid_fat_batch_rejected(self):
        with pytest.raises(ValueError):
            plan_job_chunks(self._jobs([0.5]), fat_batch=0)


class TestEngineEquivalence:
    def test_serial_and_parallel_runs_are_bit_identical(self, smoke_context, population):
        policy = FixedEpochPolicy(0.25)
        serial = CampaignEngine(smoke_context, jobs=1).run(population, policy)
        parallel = CampaignEngine(smoke_context, jobs=2).run(population, policy)
        assert serial.results == parallel.results
        assert serial.target_accuracy == parallel.target_accuracy
        assert [r.chip_id for r in parallel.results] == [c.chip_id for c in population]

    def test_engine_reduce_matches_framework_run(self, smoke_context, population):
        engine = CampaignEngine(smoke_context, jobs=2)
        via_engine = engine.run_reduce(population, statistic="max")
        via_framework = smoke_context.framework().run(population, statistic="max")
        assert via_engine.results == via_framework.results
        assert via_engine.policy_name == via_framework.policy_name == "reduce-max"

    def test_invalid_worker_counts_rejected(self, smoke_context):
        with pytest.raises(ValueError):
            CampaignEngine(smoke_context, jobs=0)
        with pytest.raises(ValueError):
            CampaignEngine(smoke_context, jobs=2, chunk_size=0)


class TestStoreAndResume:
    def test_store_written_and_rerun_skips_all_chips(self, smoke_context, population, tmp_path):
        policy = FixedEpochPolicy(0.25)
        first = CampaignEngine(smoke_context, jobs=1, store_base=tmp_path)
        result = first.run(population, policy)
        report = first.last_report
        assert report.executed == len(population)
        assert report.skipped == 0
        assert report.store_dir is not None and report.store_dir.is_dir()
        lines = (report.store_dir / "results.jsonl").read_text().strip().splitlines()
        assert len(lines) == len(population)

        second = CampaignEngine(smoke_context, jobs=1, store_base=tmp_path)
        resumed = second.run(population, policy)
        assert second.last_report.executed == 0
        assert second.last_report.skipped == len(population)
        assert resumed.results == result.results

    def test_killed_then_resumed_campaign_completes_without_duplicates(
        self, smoke_context, population, tmp_path
    ):
        policy = FixedEpochPolicy(0.25)
        engine = CampaignEngine(smoke_context, jobs=1, store_base=tmp_path)
        full = engine.run(population, policy)
        results_path = engine.last_report.store_dir / "results.jsonl"

        # Simulate a kill after two chips, mid-write of the third: keep two
        # complete lines plus a torn trailing fragment.
        lines = results_path.read_text().splitlines()
        results_path.write_text("\n".join(lines[:2]) + "\n" + lines[2][: len(lines[2]) // 2])

        resumed_engine = CampaignEngine(smoke_context, jobs=2, store_base=tmp_path)
        resumed = resumed_engine.run(population, policy)
        assert resumed_engine.last_report.skipped == 2
        assert resumed_engine.last_report.executed == len(population) - 2
        assert resumed.results == full.results

        recorded = [
            json.loads(line)["chip_id"]
            for line in results_path.read_text().strip().splitlines()
        ]
        assert len(recorded) == len(set(recorded)) == len(population)

    def test_killed_mid_batched_chunk_resumes_under_jobs(
        self, smoke_context, population, tmp_path
    ):
        """Kill/resume at chunk granularity with --jobs N x batched groups.

        The store's group protocol appends a whole batched chunk per fsync;
        a kill mid-chunk leaves the previous chunks durable plus a torn
        fragment.  Resuming (again under --jobs N) must re-run exactly the
        unrecorded chips — no duplicates, no losses, bit-identical results.
        """
        policy = FixedEpochPolicy(0.25)
        engine = CampaignEngine(smoke_context, jobs=2, fat_batch=2, store_base=tmp_path)
        full = engine.run(population, policy)
        results_path = engine.last_report.store_dir / "results.jsonl"
        lines = results_path.read_text().splitlines()
        assert len(lines) == len(population)
        # Simulate a kill mid-way through the second batched chunk: the
        # first chunk's group append is durable, the next line is torn.
        results_path.write_text(
            "\n".join(lines[:2]) + "\n" + lines[2][: len(lines[2]) // 2]
        )

        resumed_engine = CampaignEngine(
            smoke_context, jobs=2, fat_batch=2, store_base=tmp_path
        )
        resumed = resumed_engine.run(population, policy)
        assert resumed_engine.last_report.skipped == 2
        assert resumed_engine.last_report.executed == len(population) - 2
        assert resumed.results == full.results
        recorded = [
            json.loads(line)["chip_id"]
            for line in results_path.read_text().strip().splitlines()
        ]
        assert len(recorded) == len(set(recorded)) == len(population)

    def test_resumed_plan_regroups_into_same_budget_groups(
        self, framework, population
    ):
        jobs = build_jobs(framework, population, FixedEpochPolicy(0.25))
        full_plan = plan_job_chunks(jobs, fat_batch=3)
        # Chips recorded before the kill drop out; the remaining jobs regroup
        # into the same budget groups (every chunk still single-budget, and
        # the set of budgets is unchanged), just with fewer members.
        pending = jobs[2:]
        resumed_plan = plan_job_chunks(pending, fat_batch=3)
        for chunk in full_plan + resumed_plan:
            assert len({job.epochs for job in chunk}) == 1
        assert {job.epochs for chunk in resumed_plan for job in chunk} == {
            job.epochs for job in pending
        }
        planned = [job.chip_id for chunk in resumed_plan for job in chunk]
        assert sorted(planned) == sorted(job.chip_id for job in pending)

    def test_append_many_is_one_durable_group(self, framework, population, tmp_path):
        jobs = build_jobs(framework, population, FixedEpochPolicy(0.0))
        results = [execute_job(framework, job) for job in jobs]
        store = CampaignStore.open(tmp_path, "d" * 64, manifest={"policy": "p"})
        store.append_many(results[:3])
        store.append_many([])  # no-op
        store.append_many(results[3:])
        recorded = store.completed()
        assert list(recorded) == [result.chip_id for result in results]
        assert list(recorded.values()) == results

    def test_no_resume_re_executes_everything(self, smoke_context, population, tmp_path):
        policy = FixedEpochPolicy(0.25)
        CampaignEngine(smoke_context, jobs=1, store_base=tmp_path).run(population, policy)
        engine = CampaignEngine(smoke_context, jobs=1, store_base=tmp_path, resume=False)
        engine.run(population, policy)
        assert engine.last_report.executed == len(population)

    def test_store_rejects_foreign_fingerprint(self, tmp_path):
        store = CampaignStore.open(tmp_path, "a" * 64, manifest={"policy": "p"})
        assert store.read_manifest()["fingerprint"] == "a" * 64
        # Same directory (first 16 chars collide) but a different campaign.
        colliding = "a" * 16 + "b" * 48
        with pytest.raises(CampaignStoreError):
            CampaignStore.open(tmp_path, colliding, manifest={"policy": "p"})

    def test_completed_skips_corrupt_lines(self, tmp_path):
        store = CampaignStore.open(tmp_path, "c" * 64, manifest={"policy": "p"})
        store.results_path.write_text('{"not a result": true}\n{torn')
        assert store.completed() == {}

    @pytest.mark.parametrize("old_version", [2, 3])
    def test_old_version_store_never_resumes_strategy_tagged_campaign(
        self, smoke_context, population, tmp_path, monkeypatch, old_version
    ):
        """A version-2/3 store (pre-strategy fingerprints) is invisible to a
        version-4 campaign: the format version is part of every fingerprint,
        so the old store's directory is never matched and every chip
        re-executes instead of resuming against old-numerics results."""
        import repro.campaign.store as store_module

        policy = FixedEpochPolicy(0.25)
        monkeypatch.setattr(store_module, "STORE_FORMAT_VERSION", old_version)
        old_engine = CampaignEngine(smoke_context, jobs=1, store_base=tmp_path)
        old_engine.run(population, policy)
        old_fingerprint = old_engine.last_report.fingerprint
        old_dir = old_engine.last_report.store_dir
        assert old_engine.last_report.executed == len(population)

        monkeypatch.undo()
        new_engine = CampaignEngine(smoke_context, jobs=1, store_base=tmp_path)
        new_engine.run(population, policy)
        # Nothing resumed: the strategy-tagged campaign owns a fresh store.
        assert new_engine.last_report.skipped == 0
        assert new_engine.last_report.executed == len(population)
        assert new_engine.last_report.fingerprint != old_fingerprint
        assert new_engine.last_report.store_dir != old_dir
        # Forcing a different campaign onto the old store's directory (same
        # policy, colliding 16-char prefix) is refused outright.
        colliding = old_fingerprint[:16] + "f" * (len(old_fingerprint) - 16)
        assert colliding != old_fingerprint
        with pytest.raises(CampaignStoreError):
            CampaignStore.open(tmp_path, colliding, manifest={"policy": policy.name})


class TestStoreIntegrity:
    """Checksummed lines, manifest corruption, ENOSPC and verify-store."""

    def _store_with_results(self, framework, population, tmp_path):
        jobs = build_jobs(framework, population, FixedEpochPolicy(0.0))
        results = [execute_job(framework, job) for job in jobs]
        store = CampaignStore.open(tmp_path, "e" * 64, manifest={"policy": "p"})
        store.append_many(results)
        return store, results

    def test_lines_are_checksummed_and_verify_clean(
        self, framework, population, tmp_path
    ):
        store, results = self._store_with_results(framework, population, tmp_path)
        for line in store.results_path.read_text().splitlines():
            assert '"checksum"' in line
            result, status = decode_result_line(line)
            assert status == "ok"
        report = store.verify()
        assert report.is_clean
        assert report.valid == len(results)
        assert report.legacy_unchecksummed == 0
        assert "clean" in report.describe()

    def test_silent_corruption_detected_and_chip_re_executed(
        self, framework, population, tmp_path
    ):
        """A flipped digit in a still-parseable line — which the pre-checksum
        reader accepted as a valid row — is now detected and skipped."""
        store, results = self._store_with_results(framework, population, tmp_path)
        lines = store.results_path.read_text().splitlines()
        row = json.loads(lines[0])
        row["accuracy_after"] = row["accuracy_after"] + 0.125  # silent bit-rot
        corrupted = json.dumps(row, sort_keys=True)
        assert json.loads(corrupted)  # the old reader would have taken it
        store.results_path.write_text("\n".join([corrupted] + lines[1:]) + "\n")

        assert decode_result_line(corrupted) == (None, "checksum-mismatch")
        completed = store.completed()
        assert results[0].chip_id not in completed
        assert len(completed) == len(results) - 1
        report = store.verify()
        assert not report.is_clean
        assert report.checksum_mismatches == [1]

    def test_legacy_unchecksummed_lines_remain_readable(
        self, framework, population, tmp_path
    ):
        store, results = self._store_with_results(framework, population, tmp_path)
        # Rewrite the store as a pre-checksum (v4) store would have left it.
        store.results_path.write_text(
            "".join(json.dumps(r.to_dict(), sort_keys=True) + "\n" for r in results)
        )
        assert list(store.completed().values()) == results
        report = store.verify()
        assert report.is_clean
        assert report.legacy_unchecksummed == len(results)
        # compact() canonicalizes legacy lines to checksummed ones.
        assert store.compact() == len(results)
        assert store.verify().legacy_unchecksummed == 0
        assert list(store.completed().values()) == results

    def test_torn_tail_repaired_before_next_append(
        self, framework, population, tmp_path
    ):
        store, results = self._store_with_results(framework, population, tmp_path)
        with store.results_path.open("a", encoding="utf-8") as handle:
            handle.write('{"chip_id": "torn-fragm')
        assert store.verify().torn_tail
        store.append(results[0])
        report = store.verify()
        assert not report.torn_tail
        assert report.is_clean or set(report.duplicates) == {results[0].chip_id}
        assert len(store.completed()) == len(results)

    def test_corrupt_manifest_with_results_refuses_open(
        self, framework, population, tmp_path
    ):
        store, _ = self._store_with_results(framework, population, tmp_path)
        store.manifest_path.write_text("{ not json")
        with pytest.raises(CampaignStoreError, match="refusing"):
            CampaignStore.open(tmp_path, "e" * 64, manifest={"policy": "p"})
        assert not store.verify().is_clean
        assert store.verify().manifest_error

    def test_corrupt_manifest_of_empty_store_is_overwritten(self, tmp_path):
        store = CampaignStore.open(tmp_path, "f" * 64, manifest={"policy": "p"})
        store.manifest_path.write_text("{ not json")
        reopened = CampaignStore.open(tmp_path, "f" * 64, manifest={"policy": "p"})
        assert reopened.read_manifest()["fingerprint"] == "f" * 64

    def test_failed_append_rolls_back_and_raises(
        self, framework, population, tmp_path, monkeypatch
    ):
        import errno

        store, results = self._store_with_results(framework, population, tmp_path)
        before = store.results_path.read_bytes()

        def no_space(fd):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr(os, "fsync", no_space)
        with pytest.raises(CampaignStoreError, match="disk full"):
            store.append_many(results[:1])
        monkeypatch.undo()
        # The half-flushed group never masquerades as durable rows.
        assert store.results_path.read_bytes() == before
        assert list(store.completed().values()) == results

    def test_verify_store_cli_reports_corruption(
        self, framework, population, tmp_path, capsys
    ):
        store, _ = self._store_with_results(framework, population, tmp_path)
        assert main(["verify-store", str(tmp_path)]) == 0
        assert "all clean" in capsys.readouterr().out

        lines = store.results_path.read_text().splitlines()
        row = json.loads(lines[0])
        row["epochs_trained"] = 99.0
        store.results_path.write_text(
            "\n".join([json.dumps(row, sort_keys=True)] + lines[1:]) + "\n"
        )
        assert main(["verify-store", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "checksum mismatch" in out
        assert "INTEGRITY ISSUES FOUND" in out

    def test_verify_store_cli_without_stores(self, tmp_path, capsys):
        assert main(["verify-store", str(tmp_path / "nowhere")]) == 1
        assert "no campaign stores" in capsys.readouterr().out


class TestHeartbeat:
    def _capture(self):
        import logging

        class ListHandler(logging.Handler):
            def __init__(self):
                super().__init__(level=logging.INFO)
                self.messages = []

            def emit(self, record):
                self.messages.append(record.getMessage())

        return ListHandler()

    def test_heartbeat_logs_progress_and_throughput(self, smoke_context, population):
        import logging

        from repro.utils.logging import get_logger

        handler = self._capture()
        logger = get_logger("campaign.engine")
        previous_level = logger.level
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        try:
            engine = CampaignEngine(
                smoke_context, jobs=1, fat_batch=1, heartbeat_seconds=0.0
            )
            engine.run(population, FixedEpochPolicy(0.25))
        finally:
            logger.removeHandler(handler)
            logger.setLevel(previous_level)
        beats = [m for m in handler.messages if "heartbeat" in m]
        # heartbeat_seconds=0 fires after every chunk except the last one
        # (completion is covered by the final report line).
        assert len(beats) == len(population) - 1
        assert "chips/s" in beats[0]
        final = [m for m in handler.messages if "campaign finished" in m]
        assert final and "rate=" in final[0]

    def test_heartbeat_disabled(self, smoke_context, population):
        import logging

        from repro.utils.logging import get_logger

        handler = self._capture()
        logger = get_logger("campaign.engine")
        previous_level = logger.level
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        try:
            engine = CampaignEngine(smoke_context, jobs=1, heartbeat_seconds=None)
            engine.run(population, FixedEpochPolicy(0.0))
        finally:
            logger.removeHandler(handler)
            logger.setLevel(previous_level)
        assert not any("heartbeat" in m for m in handler.messages)

    def test_negative_heartbeat_rejected(self, smoke_context):
        with pytest.raises(ValueError):
            CampaignEngine(smoke_context, heartbeat_seconds=-1.0)


class TestFingerprint:
    def test_fingerprint_is_stable_and_input_sensitive(self, framework, population):
        preset = smoke_preset()
        jobs = build_jobs(framework, population, FixedEpochPolicy(0.25))
        base = campaign_fingerprint(preset, "fixed-0.25ep", 0.9, jobs)
        assert base == campaign_fingerprint(preset, "fixed-0.25ep", 0.9, jobs)
        assert base != campaign_fingerprint(preset, "fixed-0.5ep", 0.9, jobs)
        assert base != campaign_fingerprint(preset, "fixed-0.25ep", 0.91, jobs)
        other_jobs = build_jobs(framework, population, FixedEpochPolicy(0.5))
        assert base != campaign_fingerprint(preset, "fixed-0.25ep", 0.9, other_jobs)
        smaller = ChipPopulation(population.chips[:2])
        fewer_jobs = build_jobs(framework, smaller, FixedEpochPolicy(0.25))
        assert base != campaign_fingerprint(preset, "fixed-0.25ep", 0.9, fewer_jobs)


class TestDiskCache:
    def _tiny_preset(self):
        preset = smoke_preset()
        preset.pretrain_epochs = 1.0
        return preset

    def test_cache_files_written_and_reloaded(self, tmp_path, monkeypatch):
        preset = self._tiny_preset()
        first = ExperimentContext.from_preset(preset, use_cache=False, disk_cache_dir=tmp_path)
        cached_files = sorted(p.name for p in tmp_path.iterdir())
        assert any(name.endswith(".npz") for name in cached_files)
        assert any(name.endswith(".json") for name in cached_files)

        # A second build must not pre-train: poison the Trainer to prove it.
        class _Boom:
            def __init__(self, *args, **kwargs):
                raise AssertionError("pre-training ran despite a warm disk cache")

        monkeypatch.setattr("repro.experiments.common.Trainer", _Boom)
        second = ExperimentContext.from_preset(preset, use_cache=False, disk_cache_dir=tmp_path)
        assert state_dicts_equal(first.pretrained_state, second.pretrained_state)
        assert second.clean_accuracy == first.clean_accuracy

    @pytest.mark.parametrize(
        "corruption",
        [b"garbage", b"PK\x03\x04truncated-zip"],
        ids=["not-a-zip", "torn-zip"],
    )
    def test_unreadable_cache_entry_falls_back_to_pretraining(self, tmp_path, corruption):
        preset = self._tiny_preset()
        first = ExperimentContext.from_preset(preset, use_cache=False, disk_cache_dir=tmp_path)
        for path in tmp_path.glob("*.npz"):
            path.write_bytes(corruption)
        second = ExperimentContext.from_preset(preset, use_cache=False, disk_cache_dir=tmp_path)
        assert state_dicts_equal(first.pretrained_state, second.pretrained_state)


class TestCampaignCli:
    def test_campaign_command_runs_and_resumes(self, capsys, tmp_path):
        base = [
            "campaign",
            "--preset",
            "smoke",
            "--chips",
            "3",
            "--policy",
            "fixed",
            "--fixed-epochs",
            "0.25",
            "--campaign-dir",
            str(tmp_path / "campaigns"),
            "--output",
            str(tmp_path / "campaign.json"),
        ]
        assert main(base + ["--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "fixed-0.25ep" in out
        assert "executed=3" in out
        payload = json.loads((tmp_path / "campaign.json").read_text())
        assert payload["figure"] == "campaign"
        assert payload["report"]["executed"] == 3
        assert len(payload["chips"]) == 3

        assert main(base) == 0
        out = capsys.readouterr().out
        assert "skipped=3" in out
        rerun = json.loads((tmp_path / "campaign.json").read_text())
        assert rerun["report"]["executed"] == 0
        assert rerun["chips"] == payload["chips"]

    def test_fig3_accepts_jobs_and_campaign_dir(self, capsys, tmp_path):
        args = [
            "fig3",
            "--preset",
            "smoke",
            "--chips",
            "2",
            "--jobs",
            "2",
            "--campaign-dir",
            str(tmp_path / "campaigns"),
        ]
        assert main(args) == 0
        assert "reduce-max" in capsys.readouterr().out
        stores = list((tmp_path / "campaigns").iterdir())
        # One store per policy: reduce-max, reduce-mean and the fixed budgets.
        assert len(stores) >= 3
        # Re-running resumes every policy from the stores.
        assert main(args) == 0
        assert "reduce-max" in capsys.readouterr().out

    def test_jobs_must_be_positive(self):
        with pytest.raises(SystemExit):
            main(["fig3", "--preset", "smoke", "--jobs", "0"])

    def test_engine_args_validated_before_context_build(self, capsys):
        """Bad engine-constructor args exit with a usage error (code 2), not
        a traceback from CampaignEngine.__init__ after pre-training."""
        for argv in (
            ["campaign", "--preset", "smoke", "--fat-batch", "0"],
            ["campaign", "--preset", "smoke", "--chips", "0"],
            ["campaign", "--preset", "smoke", "--fixed-epochs", "-1"],
            ["campaign", "--preset", "smoke", "--max-chunk-retries", "-1"],
            ["campaign", "--preset", "smoke", "--chunk-timeout", "0"],
            ["campaign", "--preset", "smoke", "--chaos", "kill"],
            ["campaign", "--preset", "smoke", "--chaos", "frobnicate=1"],
            ["campaign", "--preset", "smoke", "--chaos", "kill=many"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2
            err = capsys.readouterr().err
            assert "usage:" in err
