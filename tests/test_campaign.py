"""Tests for the parallel campaign engine, its store, and the disk cache."""

from __future__ import annotations

import dataclasses
import json
import pickle

import pytest

from repro.campaign import (
    CampaignEngine,
    CampaignStore,
    CampaignStoreError,
    ChipJob,
    build_jobs,
    campaign_fingerprint,
    execute_job,
)
from repro.cli import main
from repro.core.chips import ChipPopulation
from repro.core.selection import FixedEpochPolicy
from repro.experiments import ExperimentContext, smoke_preset
from repro.nn.serialization import state_dicts_equal


@pytest.fixture(scope="module")
def population(smoke_context):
    preset = smoke_context.preset
    return ChipPopulation.generate(
        count=4,
        rows=preset.array_rows,
        cols=preset.array_cols,
        fault_rates=(0.05, 0.25),
        seed=123,
    )


@pytest.fixture
def framework(smoke_context):
    return smoke_context.framework()


class TestChipJob:
    def test_jobs_are_picklable_and_json_round_trip(self, framework, population):
        jobs = build_jobs(framework, population, FixedEpochPolicy(0.25))
        assert [job.chip_id for job in jobs] == [chip.chip_id for chip in population]
        for job in jobs:
            assert pickle.loads(pickle.dumps(job)) == job
            assert ChipJob.from_dict(json.loads(json.dumps(job.to_dict()))) == job

    def test_execution_is_deterministic(self, framework, population):
        job = build_jobs(framework, population, FixedEpochPolicy(0.25))[0]
        first = execute_job(framework, job)
        second = execute_job(framework, job)
        assert first == second
        assert first.epochs_allocated == 0.25

    def test_negative_epochs_rejected(self):
        with pytest.raises(ValueError):
            ChipJob(chip={"chip_id": "c"}, epochs=-1.0, target_accuracy=0.9, policy_name="p")

    def test_result_round_trips_through_dict(self, framework, population):
        job = build_jobs(framework, population, FixedEpochPolicy(0.25))[0]
        result = execute_job(framework, job)
        restored = type(result).from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored == result


class TestEngineEquivalence:
    def test_serial_and_parallel_runs_are_bit_identical(self, smoke_context, population):
        policy = FixedEpochPolicy(0.25)
        serial = CampaignEngine(smoke_context, jobs=1).run(population, policy)
        parallel = CampaignEngine(smoke_context, jobs=2).run(population, policy)
        assert serial.results == parallel.results
        assert serial.target_accuracy == parallel.target_accuracy
        assert [r.chip_id for r in parallel.results] == [c.chip_id for c in population]

    def test_engine_reduce_matches_framework_run(self, smoke_context, population):
        engine = CampaignEngine(smoke_context, jobs=2)
        via_engine = engine.run_reduce(population, statistic="max")
        via_framework = smoke_context.framework().run(population, statistic="max")
        assert via_engine.results == via_framework.results
        assert via_engine.policy_name == via_framework.policy_name == "reduce-max"

    def test_invalid_worker_counts_rejected(self, smoke_context):
        with pytest.raises(ValueError):
            CampaignEngine(smoke_context, jobs=0)
        with pytest.raises(ValueError):
            CampaignEngine(smoke_context, jobs=2, chunk_size=0)


class TestStoreAndResume:
    def test_store_written_and_rerun_skips_all_chips(self, smoke_context, population, tmp_path):
        policy = FixedEpochPolicy(0.25)
        first = CampaignEngine(smoke_context, jobs=1, store_base=tmp_path)
        result = first.run(population, policy)
        report = first.last_report
        assert report.executed == len(population)
        assert report.skipped == 0
        assert report.store_dir is not None and report.store_dir.is_dir()
        lines = (report.store_dir / "results.jsonl").read_text().strip().splitlines()
        assert len(lines) == len(population)

        second = CampaignEngine(smoke_context, jobs=1, store_base=tmp_path)
        resumed = second.run(population, policy)
        assert second.last_report.executed == 0
        assert second.last_report.skipped == len(population)
        assert resumed.results == result.results

    def test_killed_then_resumed_campaign_completes_without_duplicates(
        self, smoke_context, population, tmp_path
    ):
        policy = FixedEpochPolicy(0.25)
        engine = CampaignEngine(smoke_context, jobs=1, store_base=tmp_path)
        full = engine.run(population, policy)
        results_path = engine.last_report.store_dir / "results.jsonl"

        # Simulate a kill after two chips, mid-write of the third: keep two
        # complete lines plus a torn trailing fragment.
        lines = results_path.read_text().splitlines()
        results_path.write_text("\n".join(lines[:2]) + "\n" + lines[2][: len(lines[2]) // 2])

        resumed_engine = CampaignEngine(smoke_context, jobs=2, store_base=tmp_path)
        resumed = resumed_engine.run(population, policy)
        assert resumed_engine.last_report.skipped == 2
        assert resumed_engine.last_report.executed == len(population) - 2
        assert resumed.results == full.results

        recorded = [
            json.loads(line)["chip_id"]
            for line in results_path.read_text().strip().splitlines()
        ]
        assert len(recorded) == len(set(recorded)) == len(population)

    def test_no_resume_re_executes_everything(self, smoke_context, population, tmp_path):
        policy = FixedEpochPolicy(0.25)
        CampaignEngine(smoke_context, jobs=1, store_base=tmp_path).run(population, policy)
        engine = CampaignEngine(smoke_context, jobs=1, store_base=tmp_path, resume=False)
        engine.run(population, policy)
        assert engine.last_report.executed == len(population)

    def test_store_rejects_foreign_fingerprint(self, tmp_path):
        store = CampaignStore.open(tmp_path, "a" * 64, manifest={"policy": "p"})
        assert store.read_manifest()["fingerprint"] == "a" * 64
        # Same directory (first 16 chars collide) but a different campaign.
        colliding = "a" * 16 + "b" * 48
        with pytest.raises(CampaignStoreError):
            CampaignStore.open(tmp_path, colliding, manifest={"policy": "p"})

    def test_completed_skips_corrupt_lines(self, tmp_path):
        store = CampaignStore.open(tmp_path, "c" * 64, manifest={"policy": "p"})
        store.results_path.write_text('{"not a result": true}\n{torn')
        assert store.completed() == {}


class TestFingerprint:
    def test_fingerprint_is_stable_and_input_sensitive(self, framework, population):
        preset = smoke_preset()
        jobs = build_jobs(framework, population, FixedEpochPolicy(0.25))
        base = campaign_fingerprint(preset, "fixed-0.25ep", 0.9, jobs)
        assert base == campaign_fingerprint(preset, "fixed-0.25ep", 0.9, jobs)
        assert base != campaign_fingerprint(preset, "fixed-0.5ep", 0.9, jobs)
        assert base != campaign_fingerprint(preset, "fixed-0.25ep", 0.91, jobs)
        other_jobs = build_jobs(framework, population, FixedEpochPolicy(0.5))
        assert base != campaign_fingerprint(preset, "fixed-0.25ep", 0.9, other_jobs)
        smaller = ChipPopulation(population.chips[:2])
        fewer_jobs = build_jobs(framework, smaller, FixedEpochPolicy(0.25))
        assert base != campaign_fingerprint(preset, "fixed-0.25ep", 0.9, fewer_jobs)


class TestDiskCache:
    def _tiny_preset(self):
        preset = smoke_preset()
        preset.pretrain_epochs = 1.0
        return preset

    def test_cache_files_written_and_reloaded(self, tmp_path, monkeypatch):
        preset = self._tiny_preset()
        first = ExperimentContext.from_preset(preset, use_cache=False, disk_cache_dir=tmp_path)
        cached_files = sorted(p.name for p in tmp_path.iterdir())
        assert any(name.endswith(".npz") for name in cached_files)
        assert any(name.endswith(".json") for name in cached_files)

        # A second build must not pre-train: poison the Trainer to prove it.
        class _Boom:
            def __init__(self, *args, **kwargs):
                raise AssertionError("pre-training ran despite a warm disk cache")

        monkeypatch.setattr("repro.experiments.common.Trainer", _Boom)
        second = ExperimentContext.from_preset(preset, use_cache=False, disk_cache_dir=tmp_path)
        assert state_dicts_equal(first.pretrained_state, second.pretrained_state)
        assert second.clean_accuracy == first.clean_accuracy

    @pytest.mark.parametrize(
        "corruption",
        [b"garbage", b"PK\x03\x04truncated-zip"],
        ids=["not-a-zip", "torn-zip"],
    )
    def test_unreadable_cache_entry_falls_back_to_pretraining(self, tmp_path, corruption):
        preset = self._tiny_preset()
        first = ExperimentContext.from_preset(preset, use_cache=False, disk_cache_dir=tmp_path)
        for path in tmp_path.glob("*.npz"):
            path.write_bytes(corruption)
        second = ExperimentContext.from_preset(preset, use_cache=False, disk_cache_dir=tmp_path)
        assert state_dicts_equal(first.pretrained_state, second.pretrained_state)


class TestCampaignCli:
    def test_campaign_command_runs_and_resumes(self, capsys, tmp_path):
        base = [
            "campaign",
            "--preset",
            "smoke",
            "--chips",
            "3",
            "--policy",
            "fixed",
            "--fixed-epochs",
            "0.25",
            "--campaign-dir",
            str(tmp_path / "campaigns"),
            "--output",
            str(tmp_path / "campaign.json"),
        ]
        assert main(base + ["--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "fixed-0.25ep" in out
        assert "executed=3" in out
        payload = json.loads((tmp_path / "campaign.json").read_text())
        assert payload["figure"] == "campaign"
        assert payload["report"]["executed"] == 3
        assert len(payload["chips"]) == 3

        assert main(base) == 0
        out = capsys.readouterr().out
        assert "skipped=3" in out
        rerun = json.loads((tmp_path / "campaign.json").read_text())
        assert rerun["report"]["executed"] == 0
        assert rerun["chips"] == payload["chips"]

    def test_fig3_accepts_jobs_and_campaign_dir(self, capsys, tmp_path):
        args = [
            "fig3",
            "--preset",
            "smoke",
            "--chips",
            "2",
            "--jobs",
            "2",
            "--campaign-dir",
            str(tmp_path / "campaigns"),
        ]
        assert main(args) == 0
        assert "reduce-max" in capsys.readouterr().out
        stores = list((tmp_path / "campaigns").iterdir())
        # One store per policy: reduce-max, reduce-mean and the fixed budgets.
        assert len(stores) >= 3
        # Re-running resumes every policy from the stores.
        assert main(args) == 0
        assert "reduce-max" in capsys.readouterr().out

    def test_jobs_must_be_positive(self):
        with pytest.raises(SystemExit):
            main(["fig3", "--preset", "smoke", "--jobs", "0"])
