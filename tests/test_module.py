"""Tests for the Module system: registration, traversal, state dicts, modes."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Module, ModuleList, Parameter, Sequential


class TinyBlock(Module):
    def __init__(self):
        super().__init__()
        self.linear = nn.Linear(4, 3, rng=0)
        self.scale = Parameter(np.ones(3, dtype=np.float32))
        self.register_buffer("calls", np.zeros(1, dtype=np.float32))

    def forward(self, x):
        return self.linear(x) * self.scale


class TestRegistration:
    def test_parameters_and_modules_registered(self):
        block = TinyBlock()
        names = dict(block.named_parameters())
        assert set(names) == {"linear.weight", "linear.bias", "scale"}
        assert isinstance(block._modules["linear"], nn.Linear)

    def test_reassigning_attribute_unregisters(self):
        block = TinyBlock()
        block.scale = 3.0  # plain attribute now
        assert "scale" not in dict(block.named_parameters())

    def test_register_parameter_none_removes(self):
        block = TinyBlock()
        block.register_parameter("scale", None)
        assert "scale" not in dict(block.named_parameters())
        assert block.scale is None

    def test_buffers_listed(self):
        block = TinyBlock()
        assert "calls" in dict(block.named_buffers())

    def test_num_parameters(self):
        block = TinyBlock()
        assert block.num_parameters() == 4 * 3 + 3 + 3

    def test_named_modules_includes_nested(self):
        model = Sequential(TinyBlock(), nn.ReLU())
        names = [name for name, _ in model.named_modules()]
        assert "0.linear" in names
        assert "1" in names

    def test_apply_visits_every_module(self):
        model = Sequential(TinyBlock(), nn.ReLU())
        visited = []
        model.apply(lambda module: visited.append(type(module).__name__))
        assert "TinyBlock" in visited and "ReLU" in visited and "Sequential" in visited


class TestTrainEval:
    def test_mode_propagates(self):
        model = Sequential(TinyBlock(), nn.Dropout(0.5))
        model.eval()
        assert not model.training
        assert all(not module.training for module in model.modules())
        model.train()
        assert all(module.training for module in model.modules())

    def test_zero_grad(self):
        model = TinyBlock()
        out = model(nn.Tensor(np.ones((2, 4), dtype=np.float32)))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(nn.Tensor(np.ones(2)))


class TestStateDict:
    def test_round_trip(self):
        source = TinyBlock()
        target = TinyBlock()
        # Make the models differ first.
        for p in target.parameters():
            p.data = p.data + 1.0
        target.load_state_dict(source.state_dict())
        for (name_a, a), (name_b, b) in zip(source.named_parameters(), target.named_parameters()):
            assert name_a == name_b
            np.testing.assert_allclose(a.data, b.data)

    def test_state_dict_copies_data(self):
        model = TinyBlock()
        state = model.state_dict()
        state["scale"][:] = 42.0
        assert not np.allclose(model.scale.data, 42.0)

    def test_strict_missing_key_raises(self):
        model = TinyBlock()
        state = model.state_dict()
        state.pop("scale")
        with pytest.raises(KeyError):
            model.load_state_dict(state)
        model.load_state_dict(state, strict=False)

    def test_strict_unexpected_key_raises(self):
        model = TinyBlock()
        state = model.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = TinyBlock()
        state = model.state_dict()
        state["scale"] = np.zeros(7)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_buffers_round_trip(self):
        model = TinyBlock()
        state = model.state_dict()
        state["calls"] = np.array([5.0], dtype=np.float32)
        model.load_state_dict(state)
        assert model.calls[0] == 5.0


class TestContainers:
    def test_sequential_forward_and_indexing(self):
        model = Sequential(nn.Linear(4, 8, rng=0), nn.ReLU(), nn.Linear(8, 2, rng=1))
        out = model(nn.Tensor(np.ones((3, 4), dtype=np.float32)))
        assert out.shape == (3, 2)
        assert len(model) == 3
        assert isinstance(model[1], nn.ReLU)
        assert len(list(iter(model))) == 3

    def test_sequential_append(self):
        model = Sequential(nn.Linear(4, 4, rng=0))
        model.append(nn.ReLU())
        assert len(model) == 2

    def test_module_list(self):
        blocks = ModuleList([nn.Linear(2, 2, rng=i) for i in range(3)])
        assert len(blocks) == 3
        assert len(list(blocks.parameters())) == 6
        with pytest.raises(RuntimeError):
            blocks(nn.Tensor(np.ones((1, 2))))

    def test_repr_contains_children(self):
        model = Sequential(nn.Linear(2, 2, rng=0), nn.ReLU())
        text = repr(model)
        assert "Linear" in text and "ReLU" in text
