"""Exact-equivalence tests for batched multi-chip fault-aware retraining.

The contract of :class:`~repro.accelerator.batched.BatchedFaultTrainer` is
that retraining B chips in one stacked batched loop is *bit-identical* to B
serial :class:`~repro.training.Trainer` runs with the same config: same
per-chip weights, same per-step losses, same checkpoint accuracies.  These
tests pin that on the BLAS build in use, across optimizers, model families
(MLP / CNN), dropout and label smoothing, and then up through the framework
(``retrain_chips_batched``) and the campaign engine's coalescing phase.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.accelerator import FaultMap, model_fault_masks
from repro.accelerator.batched import BatchedFaultTrainer, UnsupportedModelError
from repro.campaign import CampaignEngine, build_jobs, execute_jobs_batched
from repro.core.chips import ChipPopulation
from repro.core.selection import FixedEpochPolicy
from repro.data import make_blob_classification
from repro.models import MLP
from repro.training import Trainer, TrainingConfig


def _mlp_factory(bundle):
    return lambda: MLP(8, bundle.num_classes, hidden_sizes=(24, 16), seed=0)


def _cnn_factory(bundle):
    channels = bundle.input_shape[0]

    def make():
        return nn.Sequential(
            nn.Conv2d(channels, 4, 3, padding=1, rng=0),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(4, 6, 3, padding=1, rng=1),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Flatten(),
            nn.Linear(6 * 2 * 2, bundle.num_classes, rng=2),
        )

    return make


def _mask_sets(make_model, num_chips=4, rows=16, cols=16):
    maps = [FaultMap.random(rows, cols, 0.05 + 0.04 * i, seed=i) for i in range(num_chips)]
    return [model_fault_masks(make_model(), fault_map) for fault_map in maps]


def _serial_runs(make_model, pretrained, mask_sets, bundle, config, epochs, checkpoints):
    runs = []
    for masks in mask_sets:
        model = make_model()
        model.load_state_dict(pretrained)
        trainer = Trainer(model, bundle.train, bundle.test, config=config, masks=masks)
        history = trainer.train(epochs, eval_checkpoints=checkpoints)
        runs.append((history, model.state_dict()))
    return runs


def _assert_batched_equals_serial(
    make_model, bundle, mask_sets, config, epochs, checkpoints=None
):
    model = make_model()
    pretrained = model.state_dict()
    serial = _serial_runs(
        make_model, pretrained, mask_sets, bundle, config, epochs, checkpoints
    )
    model.load_state_dict(pretrained)
    batched = BatchedFaultTrainer(
        model, mask_sets, bundle.train, bundle.test, config=config
    )
    histories = batched.train(epochs, eval_checkpoints=checkpoints)
    assert len(histories) == len(mask_sets)
    for chip, (serial_history, serial_state) in enumerate(serial):
        history = histories[chip]
        assert history.epochs == serial_history.epochs
        assert history.accuracies == serial_history.accuracies
        serial_losses = [record.train_loss for record in serial_history.records]
        batched_losses = [record.train_loss for record in history.records]
        for serial_loss, batched_loss in zip(serial_losses, batched_losses):
            if np.isnan(serial_loss):
                assert np.isnan(batched_loss)
            else:
                assert batched_loss == serial_loss
        state = batched.chip_state_dict(chip)
        assert set(state) == set(serial_state)
        for name in serial_state:
            np.testing.assert_array_equal(state[name], serial_state[name])
    # The shared model itself must be untouched by batched training.
    for name, value in model.state_dict().items():
        np.testing.assert_array_equal(value, pretrained[name])
    for _, module in model.named_modules():
        assert "forward" not in module.__dict__


class TestTrainerEquivalence:
    def test_mlp_sgd_momentum_with_checkpoints(self, blob_bundle):
        make = _mlp_factory(blob_bundle)
        _assert_batched_equals_serial(
            make,
            blob_bundle,
            _mask_sets(make, num_chips=5),
            TrainingConfig(learning_rate=0.05, batch_size=16, seed=3),
            epochs=1.5,
            checkpoints=[0.5, 1.0],
        )

    @pytest.mark.parametrize("optimizer", ["adam", "adamw"])
    def test_mlp_adaptive_optimizers(self, blob_bundle, optimizer):
        make = _mlp_factory(blob_bundle)
        _assert_batched_equals_serial(
            make,
            blob_bundle,
            _mask_sets(make),
            TrainingConfig(
                optimizer=optimizer,
                learning_rate=0.003,
                batch_size=16,
                seed=3,
                weight_decay=0.01,
            ),
            epochs=1.0,
        )

    def test_cnn_through_stacked_conv_backward(self, image_bundle):
        make = _cnn_factory(image_bundle)
        _assert_batched_equals_serial(
            make,
            image_bundle,
            _mask_sets(make),
            TrainingConfig(learning_rate=0.02, batch_size=16, seed=5),
            epochs=1.0,
            checkpoints=[0.5],
        )

    def test_dropout_stream_matches_serial(self, blob_bundle):
        def make():
            return MLP(8, blob_bundle.num_classes, hidden_sizes=(32,), dropout=0.5, seed=4)

        _assert_batched_equals_serial(
            make,
            blob_bundle,
            _mask_sets(make, num_chips=3),
            TrainingConfig(learning_rate=0.05, batch_size=16, seed=7),
            epochs=1.0,
        )

    def test_label_smoothing_composition(self, blob_bundle):
        make = _mlp_factory(blob_bundle)
        _assert_batched_equals_serial(
            make,
            blob_bundle,
            _mask_sets(make),
            TrainingConfig(learning_rate=0.05, batch_size=16, seed=3, label_smoothing=0.1),
            epochs=1.0,
        )

    def test_masks_stay_enforced_on_every_chip(self, blob_bundle):
        make = _mlp_factory(blob_bundle)
        mask_sets = _mask_sets(make, num_chips=3)
        model = make()
        trainer = BatchedFaultTrainer(
            model,
            mask_sets,
            blob_bundle.train,
            blob_bundle.test,
            config=TrainingConfig(learning_rate=0.1, batch_size=16, seed=0),
        )
        trainer.train(1.0, include_initial=False)
        for chip, masks in enumerate(mask_sets):
            state = trainer.chip_state_dict(chip)
            for name, mask in masks.items():
                np.testing.assert_array_equal(
                    state[f"{name}.weight"][mask], np.zeros(int(mask.sum()))
                )

    def test_single_chip_batch_matches_serial(self, blob_bundle):
        make = _mlp_factory(blob_bundle)
        _assert_batched_equals_serial(
            make,
            blob_bundle,
            _mask_sets(make, num_chips=1),
            TrainingConfig(learning_rate=0.05, batch_size=16, seed=3),
            epochs=0.5,
        )

    def test_batchnorm1d_model_matches_serial(self, blob_bundle):
        def make():
            return nn.Sequential(
                nn.Linear(8, 16, rng=0),
                nn.BatchNorm1d(16),
                nn.ReLU(),
                nn.Linear(16, blob_bundle.num_classes, rng=1),
            )

        _assert_batched_equals_serial(
            make,
            blob_bundle,
            _mask_sets(make, num_chips=3),
            TrainingConfig(learning_rate=0.05, batch_size=16, seed=3),
            epochs=1.0,
            checkpoints=[0.5],
        )

    def test_batchnorm2d_cnn_matches_serial(self, image_bundle):
        """Training-mode BatchNorm2d/1d through the stacked path.

        The per-chip-fold batch statistics, the fused analytic backward, the
        per-chip running-statistics updates and the eval-mode per-chip
        normalisation must all be bit-identical to the serial trainer —
        state_dict comparison covers running_mean/running_var too.
        """
        channels = image_bundle.input_shape[0]

        def make():
            return nn.Sequential(
                nn.Conv2d(channels, 4, 3, padding=1, bias=False, rng=0),
                nn.BatchNorm2d(4),
                nn.ReLU(),
                nn.MaxPool2d(2),
                nn.Conv2d(4, 6, 3, padding=1, bias=False, rng=1),
                nn.BatchNorm2d(6),
                nn.ReLU(),
                nn.MaxPool2d(2),
                nn.Flatten(),
                nn.Linear(6 * 2 * 2, 8, rng=2),
                nn.BatchNorm1d(8),
                nn.ReLU(),
                nn.Linear(8, image_bundle.num_classes, rng=3),
            )

        _assert_batched_equals_serial(
            make,
            image_bundle,
            _mask_sets(make, num_chips=3),
            TrainingConfig(learning_rate=0.05, batch_size=16, seed=3),
            epochs=1.0,
            checkpoints=[0.5],
        )

    def test_vgg11_mini_trains_through_stacked_path(self, image_bundle):
        """The flagship training-mode-BatchNorm workload: no serial fallback.

        ``vgg11_mini`` exercises the degenerate 1x1-spatial tail convolutions
        (whose K-major lowering is layout-sensitive) on top of a BatchNorm
        after every convolution.
        """
        from repro.models import vgg11_mini

        def make():
            return vgg11_mini(
                input_shape=image_bundle.input_shape,
                num_classes=image_bundle.num_classes,
                seed=0,
            )

        _assert_batched_equals_serial(
            make,
            image_bundle,
            _mask_sets(make, num_chips=2, rows=32, cols=32),
            TrainingConfig(learning_rate=0.02, batch_size=16, seed=5),
            epochs=0.5,
            checkpoints=[0.25],
        )


class TestTrainerValidation:
    def test_empty_mask_sets_rejected(self, blob_bundle):
        with pytest.raises(ValueError):
            BatchedFaultTrainer(
                MLP(8, blob_bundle.num_classes, seed=0),
                [],
                blob_bundle.train,
                blob_bundle.test,
            )

    def test_mismatched_mask_keys_rejected(self, blob_bundle):
        make = _mlp_factory(blob_bundle)
        mask_sets = _mask_sets(make, num_chips=2)
        broken = dict(mask_sets[1])
        broken.pop(next(iter(broken)))
        with pytest.raises(ValueError):
            BatchedFaultTrainer(make(), [mask_sets[0], broken], blob_bundle.train, blob_bundle.test)

    def test_unknown_mask_layer_rejected(self, blob_bundle):
        with pytest.raises(KeyError):
            BatchedFaultTrainer(
                MLP(8, blob_bundle.num_classes, seed=0),
                [{"no.such.layer": np.zeros((1, 1), dtype=bool)}],
                blob_bundle.train,
                blob_bundle.test,
            )

    def test_unknown_parametric_layer_raises_unsupported(self, blob_bundle):
        class Scale(nn.Module):
            def __init__(self):
                super().__init__()
                self.weight = nn.Parameter(np.ones(8, dtype=np.float32))

            def forward(self, x):
                return x * self.weight

        model = nn.Sequential(Scale(), nn.Linear(8, blob_bundle.num_classes, rng=0))
        masks = {"1": np.zeros((blob_bundle.num_classes, 8), dtype=bool)}
        with pytest.raises(UnsupportedModelError):
            BatchedFaultTrainer(model, [masks], blob_bundle.train, blob_bundle.test)

    def test_masked_batchnorm_layer_rejected(self, blob_bundle):
        model = nn.Sequential(
            nn.Linear(8, 16, rng=0),
            nn.BatchNorm1d(16),
            nn.ReLU(),
            nn.Linear(16, blob_bundle.num_classes, rng=1),
        )
        masks = {"1": np.zeros((16,), dtype=bool)}
        with pytest.raises(ValueError, match="batch norm"):
            BatchedFaultTrainer(model, [masks], blob_bundle.train, blob_bundle.test)

    def test_empty_train_loader_rejected(self):
        bundle = make_blob_classification(
            num_classes=2, features=4, train_per_class=1, test_per_class=1, seed=0
        )
        from repro.data import DataLoader

        empty_loader = DataLoader(bundle.train, batch_size=64, drop_last=True)
        model = MLP(4, 2, hidden_sizes=(8,), seed=0)
        masks = [{"body.0": np.zeros((8, 4), dtype=bool)}]
        with pytest.raises(ValueError, match="no batches"):
            BatchedFaultTrainer(model, masks, empty_loader, bundle.test)


class TestPerChipGradClip:
    def test_matches_serial_clip_per_slice(self, rng):
        chips = 3
        stacks = [
            nn.Parameter(rng.standard_normal((chips, 6, 5)).astype(np.float32)),
            nn.Parameter(rng.standard_normal((chips, 6)).astype(np.float32)),
        ]
        grads = [rng.standard_normal(p.data.shape).astype(np.float32) * 4 for p in stacks]
        for param, grad in zip(stacks, grads):
            param.grad = grad.copy()
        norms = nn.clip_grad_norm_per_chip(stacks, max_norm=1.5, num_chips=chips)
        for chip in range(chips):
            serial_params = []
            for grad in grads:
                p = nn.Parameter(np.zeros(grad.shape[1:], dtype=np.float32))
                p.grad = grad[chip].copy()
                serial_params.append(p)
            serial_norm = nn.clip_grad_norm(serial_params, 1.5)
            assert norms[chip] == serial_norm
            for stacked, serial in zip(stacks, serial_params):
                np.testing.assert_array_equal(stacked.grad[chip], serial.grad)

    def test_validation(self):
        param = nn.Parameter(np.zeros((2, 3), dtype=np.float32))
        param.grad = np.ones((2, 3), dtype=np.float32)
        with pytest.raises(ValueError):
            nn.clip_grad_norm_per_chip([param], max_norm=1.0, num_chips=0)
        with pytest.raises(ValueError):
            nn.clip_grad_norm_per_chip([param], max_norm=0.0, num_chips=2)
        with pytest.raises(ValueError):
            nn.clip_grad_norm_per_chip([param], max_norm=1.0, num_chips=5)


@pytest.fixture(scope="module")
def fat_population(smoke_context):
    preset = smoke_context.preset
    return ChipPopulation.generate(
        count=5,
        rows=preset.array_rows,
        cols=preset.array_cols,
        fault_rates=(0.05, 0.3),
        seed=321,
    )


class TestFrameworkBatchedFat:
    def test_retrain_chips_batched_matches_serial(self, smoke_context, fat_population):
        framework = smoke_context.framework()
        chips = list(fat_population)
        serial = [framework.retrain_chip(chip, 0.5) for chip in chips]
        batched = framework.retrain_chips_batched(chips, 0.5)
        assert batched == serial

    def test_chunking_is_transparent(self, smoke_context, fat_population):
        framework = smoke_context.framework()
        chips = list(fat_population)
        full = framework.retrain_chips_batched(chips, 0.25)
        chunked = framework.retrain_chips_batched(chips, 0.25, fat_batch=2)
        assert chunked == full

    def test_retrain_population_batched_toggle(self, smoke_context, fat_population):
        framework = smoke_context.framework()
        policy = FixedEpochPolicy(0.25)
        batched = framework.retrain_population(fat_population, policy, batched=True)
        serial = framework.retrain_population(fat_population, policy, batched=False)
        assert batched.results == serial.results

    def test_zero_epoch_chips_skip_training(self, smoke_context, fat_population):
        framework = smoke_context.framework()
        chips = list(fat_population)
        results = framework.retrain_chips_batched(chips, 0.0)
        serial = [framework.retrain_chip(chip, 0.0) for chip in chips]
        assert results == serial
        assert all(result.epochs_trained == 0.0 for result in results)
        # With every accuracy_before supplied (the triage path), zero-epoch
        # chips are pure lookups — still identical to the serial shortcut.
        triage = framework.triage_population(chips)
        shortcut = framework.retrain_chips_batched(chips, 0.0, accuracies_before=triage)
        assert shortcut == serial


class TestStrategyBatchedFat:
    """Serial-vs-batched bit-identity for strategy-tagged retraining.

    A strategy's masks (plain FAP, or FAM's saliency-permuted masks) are just
    another per-chip mask set stacked into the batched trainer's
    keep-multipliers, so ``retrain_chips_batched(strategy=...)`` must equal
    the per-chip serial path bit for bit — including the hybrid bypass
    strategy, whose bypassable chips never enter training at all.
    """

    @pytest.mark.parametrize("strategy", ["fap+fat", "fam+fat"])
    def test_strategy_batched_matches_serial(
        self, smoke_context, fat_population, strategy
    ):
        framework = smoke_context.framework()
        chips = list(fat_population)
        serial = [
            framework.retrain_chip(chip, 0.5, strategy=strategy) for chip in chips
        ]
        batched = framework.retrain_chips_batched(chips, 0.5, strategy=strategy)
        assert batched == serial
        assert all(result.strategy == strategy for result in batched)

    @pytest.mark.parametrize("strategy", ["fap+fat", "fam+fat"])
    def test_strategy_chunking_is_transparent(
        self, smoke_context, fat_population, strategy
    ):
        framework = smoke_context.framework()
        chips = list(fat_population)
        full = framework.retrain_chips_batched(chips, 0.25, strategy=strategy)
        chunked = framework.retrain_chips_batched(
            chips, 0.25, strategy=strategy, fat_batch=2
        )
        assert chunked == full

    def test_bypass_hybrid_batched_matches_serial(self, smoke_context):
        from repro.accelerator import FaultMap
        from repro.core.chips import Chip, ChipPopulation

        preset = smoke_context.preset
        rows, cols = preset.array_rows, preset.array_cols
        # Mix bypassable chips (sparse faults) with chips where every row and
        # column is hit (bypass infeasible -> FAT fallback).
        chips = [
            Chip("sparse-0", FaultMap.from_indices(rows, cols, [(1, 2), (5, 2)])),
            Chip(
                "dense-0",
                FaultMap.from_indices(rows, cols, [(i, i) for i in range(rows)]),
            ),
            Chip("sparse-1", FaultMap.from_indices(rows, cols, [(3, 4)])),
            Chip(
                "dense-1",
                FaultMap.from_indices(
                    rows, cols, [(i, (i + 1) % cols) for i in range(rows)]
                ),
            ),
        ]
        framework = smoke_context.framework()
        serial = [
            framework.retrain_chip(chip, 0.25, strategy="bypass+fat") for chip in chips
        ]
        batched = framework.retrain_chips_batched(chips, 0.25, strategy="bypass+fat")
        assert batched == serial
        by_id = {result.chip_id: result for result in batched}
        assert by_id["sparse-0"].epochs_trained == 0.0
        assert by_id["sparse-0"].accuracy_after == framework.clean_accuracy
        assert by_id["dense-0"].epochs_trained == 0.25

    def test_engine_strategy_coalescing_matches_per_job(
        self, smoke_context, fat_population
    ):
        policy = FixedEpochPolicy(0.25)
        coalesced = CampaignEngine(smoke_context, jobs=1, fat_batch=4).run(
            fat_population, policy, strategy="fam+fat"
        )
        per_job = CampaignEngine(smoke_context, jobs=1, fat_batch=1).run(
            fat_population, policy, strategy="fam+fat"
        )
        assert coalesced.results == per_job.results
        assert all(result.strategy == "fam+fat" for result in coalesced.results)


class TestEngineCoalescing:
    def test_fat_batch_results_identical_to_per_job(self, smoke_context, fat_population):
        policy = FixedEpochPolicy(0.25)
        coalesced = CampaignEngine(smoke_context, jobs=1, fat_batch=4).run(
            fat_population, policy
        )
        per_job = CampaignEngine(smoke_context, jobs=1, fat_batch=1).run(
            fat_population, policy
        )
        assert coalesced.results == per_job.results

    def test_jobs_batched_execution_helper(self, smoke_context, fat_population):
        framework = smoke_context.framework()
        jobs = build_jobs(framework, fat_population, FixedEpochPolicy(0.25))
        batched = execute_jobs_batched(framework, jobs, fat_batch=3)
        serial = [framework.retrain_chip(job.to_chip(), job.epochs) for job in jobs]
        assert batched == serial

    def test_mixed_budget_jobs_rejected(self, smoke_context, fat_population):
        framework = smoke_context.framework()
        jobs = build_jobs(framework, fat_population, FixedEpochPolicy(0.25))
        import dataclasses

        mixed = [jobs[0], dataclasses.replace(jobs[1], epochs=0.5)]
        with pytest.raises(ValueError):
            execute_jobs_batched(framework, mixed)

    def test_invalid_fat_batch_rejected(self, smoke_context):
        with pytest.raises(ValueError):
            CampaignEngine(smoke_context, fat_batch=0)

    def test_jobs_workers_run_batched_groups_identically(
        self, smoke_context, fat_population
    ):
        """--jobs N x --fat-batch B composes: workers execute whole stacked
        chunks and the results stay bit-identical to serial per-job runs."""
        policy = FixedEpochPolicy(0.25)
        parallel_batched = CampaignEngine(smoke_context, jobs=2, fat_batch=3).run(
            fat_population, policy
        )
        serial_per_job = CampaignEngine(smoke_context, jobs=1, fat_batch=1).run(
            fat_population, policy
        )
        assert parallel_batched.results == serial_per_job.results

    def test_eval_lowering_cache_reused_across_checkpoints(
        self, smoke_context, monkeypatch
    ):
        """Per-checkpoint evaluations lower each eval batch exactly once."""
        import repro.accelerator.batched as batched_module
        from repro.accelerator import FaultMap, model_fault_masks
        from repro.accelerator.batched import BatchedFaultTrainer

        context = smoke_context
        # The smoke preset is an MLP (no conv), so build a conv workload at
        # the same scale from the context's bundle.
        model = nn.Sequential(
            nn.Conv2d(context.bundle.input_shape[0], 4, 3, padding=1, rng=0),
            nn.ReLU(),
            nn.Flatten(),
            nn.Linear(4 * 8 * 8, context.bundle.num_classes, rng=1),
        )
        mask_sets = [
            model_fault_masks(model, FaultMap.random(16, 16, 0.05 + 0.05 * i, seed=i))
            for i in range(2)
        ]
        trainer = BatchedFaultTrainer(
            model,
            mask_sets,
            context.bundle.train,
            context.bundle.test,
            config=TrainingConfig(learning_rate=0.05, batch_size=32, seed=0),
        )
        calls = []
        real = batched_module.im2col_t

        def counting(*args, **kwargs):
            calls.append(args[0].shape)
            return real(*args, **kwargs)

        monkeypatch.setattr(batched_module, "im2col_t", counting)
        first = trainer.evaluate()
        lowered_first_pass = len(calls)
        assert lowered_first_pass > 0
        second = trainer.evaluate()
        assert len(calls) == lowered_first_pass  # no re-lowering
        assert second == first

    def test_store_resume_with_coalescing(self, smoke_context, fat_population, tmp_path):
        policy = FixedEpochPolicy(0.25)
        engine = CampaignEngine(smoke_context, jobs=1, fat_batch=3, store_base=tmp_path)
        full = engine.run(fat_population, policy)
        assert engine.last_report.executed == len(fat_population)

        resumed_engine = CampaignEngine(
            smoke_context, jobs=1, fat_batch=3, store_base=tmp_path
        )
        resumed = resumed_engine.run(fat_population, policy)
        assert resumed_engine.last_report.executed == 0
        assert resumed.results == full.results
