"""Invariants of fault-mask enforcement over long optimisation runs.

These guard the in-place keep-multiplier path in :class:`repro.training.Trainer`:
after any number of steps, under any optimizer,

* every masked weight must be *exactly* zero (not merely small), and
* the optimizer state (momentum / Adam moments) of masked entries must not
  accumulate — otherwise a later unmasking or LR change would release stale
  updates into weights that hardware forces to zero.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.accelerator import FaultMap, model_fault_masks
from repro.mitigation.fap import verify_masks_enforced
from repro.models import MLP
from repro.training import Trainer, TrainingConfig, resolve_masked_parameters


def _small_cnn(image_bundle):
    channels = image_bundle.input_shape[0]
    return nn.Sequential(
        nn.Conv2d(channels, 4, 3, padding=1, rng=0),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(4, 6, 3, padding=1, rng=1),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(6 * 2 * 2, image_bundle.num_classes, rng=2),
    )


def _masked_state_entries(optimizer, model, masks):
    """Optimizer state slices for masked weight positions, by state key."""
    params = optimizer.parameters
    name_by_id = {id(param): name for name, param in model.named_parameters()}
    entries = []
    for index, param in enumerate(params):
        name = name_by_id[id(param)]
        layer = name.rsplit(".", 1)[0]
        if layer not in masks or not name.endswith("weight"):
            continue
        mask = masks[layer]
        state = optimizer.state.get(index, {})
        for key in ("momentum", "m", "v"):
            if key in state:
                entries.append((name, key, state[key][mask]))
    return entries


@pytest.mark.parametrize(
    "config",
    [
        TrainingConfig(optimizer="sgd", learning_rate=0.05, momentum=0.9, weight_decay=5e-4, batch_size=16, seed=0),
        TrainingConfig(optimizer="adam", learning_rate=1e-3, weight_decay=1e-4, batch_size=16, seed=1),
        TrainingConfig(optimizer="adamw", learning_rate=1e-3, weight_decay=1e-2, batch_size=16, seed=2),
    ],
    ids=["sgd-momentum", "adam", "adamw"],
)
def test_masks_and_optimizer_state_stay_clean(image_bundle, config):
    model = _small_cnn(image_bundle)
    masks = model_fault_masks(model, FaultMap.random(12, 12, 0.25, seed=7))
    trainer = Trainer(model, image_bundle.train, image_bundle.test, config=config, masks=masks)

    assert verify_masks_enforced(model, masks, atol=0.0)
    for _ in range(5):
        trainer._train_steps(10)
        # Masked weights are exactly zero after every chunk of steps.
        assert verify_masks_enforced(model, masks, atol=0.0)
        # No optimizer state accumulates for masked entries.
        entries = _masked_state_entries(trainer.optimizer, model, masks)
        assert entries, "expected masked optimizer state to be inspected"
        for name, key, values in entries:
            assert np.all(values == 0.0), f"state {key!r} of {name!r} leaked into masked entries"
    # Unmasked weights did actually train.
    assert trainer.steps_taken == 50


def test_masked_weights_exact_zero_under_grad_clipping(image_bundle):
    config = TrainingConfig(
        optimizer="sgd", learning_rate=0.5, momentum=0.9, weight_decay=5e-4,
        grad_clip=0.5, batch_size=8, seed=3,
    )
    model = MLP(
        int(np.prod(image_bundle.input_shape)), image_bundle.num_classes,
        hidden_sizes=(24, 16), seed=5,
    )
    masks = model_fault_masks(model, FaultMap.random(8, 8, 0.3, seed=11))
    trainer = Trainer(model, image_bundle.train, image_bundle.test, config=config, masks=masks)
    trainer._train_steps(40)
    assert verify_masks_enforced(model, masks, atol=0.0)


def test_resolve_masked_parameters_validation(image_bundle):
    model = MLP(int(np.prod(image_bundle.input_shape)), image_bundle.num_classes, seed=0)
    with pytest.raises(KeyError):
        resolve_masked_parameters(model, {"missing.layer": np.zeros((1, 1), dtype=bool)})
    name, module = next(
        (n, m) for n, m in model.named_modules() if isinstance(m, nn.Linear)
    )
    with pytest.raises(ValueError):
        resolve_masked_parameters(model, {name: np.zeros((1, 1), dtype=bool)})


def test_keep_multipliers_match_masks(image_bundle):
    model = MLP(int(np.prod(image_bundle.input_shape)), image_bundle.num_classes, seed=0)
    masks = model_fault_masks(model, FaultMap.random(8, 8, 0.2, seed=3))
    resolved = resolve_masked_parameters(model, masks)
    assert {m.name for m in resolved} == set(masks)
    for masked in resolved:
        assert masked.keep.dtype == np.float32
        np.testing.assert_array_equal(masked.keep == 0.0, masked.mask)
        np.testing.assert_array_equal(masked.keep == 1.0, ~masked.mask)
