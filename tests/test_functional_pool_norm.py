"""Tests for pooling, batch normalisation and dropout."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor

from tests.helpers import numeric_gradient

RNG = np.random.default_rng(11)


class TestMaxPool:
    def test_forward_matches_reference(self):
        x = RNG.standard_normal((2, 3, 6, 6))
        out = F.max_pool2d(Tensor(x, dtype=np.float64), 2)
        expected = x.reshape(2, 3, 3, 2, 3, 2).max(axis=(3, 5))
        np.testing.assert_allclose(out.data, expected)

    def test_forward_with_stride(self):
        x = RNG.standard_normal((1, 1, 5, 5))
        out = F.max_pool2d(Tensor(x), 3, stride=2)
        assert out.shape == (1, 1, 2, 2)
        assert out.data[0, 0, 0, 0] == pytest.approx(x[0, 0, :3, :3].max(), rel=1e-6)

    def test_gradient(self):
        x0 = RNG.standard_normal((2, 2, 6, 6))
        x = Tensor(x0, requires_grad=True, dtype=np.float64)
        (F.max_pool2d(x, 2) ** 2).sum().backward()
        numeric = numeric_gradient(
            lambda arr: (F.max_pool2d(Tensor(arr, dtype=np.float64), 2) ** 2).sum().item(), x0
        )
        np.testing.assert_allclose(x.grad, numeric, rtol=1e-5, atol=1e-6)

    def test_gradient_routes_to_argmax_only(self):
        x0 = np.zeros((1, 1, 2, 2))
        x0[0, 0, 1, 1] = 5.0
        x = Tensor(x0, requires_grad=True, dtype=np.float64)
        F.max_pool2d(x, 2).sum().backward()
        expected = np.zeros_like(x0)
        expected[0, 0, 1, 1] = 1.0
        np.testing.assert_allclose(x.grad, expected)


class TestAvgPool:
    def test_forward(self):
        x = RNG.standard_normal((2, 3, 4, 4))
        out = F.avg_pool2d(Tensor(x, dtype=np.float64), 2)
        expected = x.reshape(2, 3, 2, 2, 2, 2).mean(axis=(3, 5))
        np.testing.assert_allclose(out.data, expected, rtol=1e-6)

    def test_gradient(self):
        x0 = RNG.standard_normal((1, 2, 4, 4))
        x = Tensor(x0, requires_grad=True, dtype=np.float64)
        (F.avg_pool2d(x, 2) ** 2).sum().backward()
        numeric = numeric_gradient(
            lambda arr: (F.avg_pool2d(Tensor(arr, dtype=np.float64), 2) ** 2).sum().item(), x0
        )
        np.testing.assert_allclose(x.grad, numeric, rtol=1e-5, atol=1e-6)

    def test_global_avg_pool(self):
        x = RNG.standard_normal((2, 3, 4, 5))
        out = F.global_avg_pool2d(Tensor(x, dtype=np.float64))
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3)), rtol=1e-6)


class TestBatchNorm:
    def test_training_normalises_batch(self):
        x = RNG.standard_normal((8, 4, 5, 5)) * 3 + 2
        gamma = Tensor(np.ones(4, dtype=np.float64))
        beta = Tensor(np.zeros(4, dtype=np.float64))
        out, _, _ = F.batch_norm(Tensor(x, dtype=np.float64), gamma, beta, None, None, training=True)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), np.zeros(4), atol=1e-6)
        np.testing.assert_allclose(out.data.std(axis=(0, 2, 3)), np.ones(4), atol=1e-3)

    def test_running_stats_update(self):
        x = RNG.standard_normal((16, 3, 4, 4)) + 5.0
        gamma = Tensor(np.ones(3))
        beta = Tensor(np.zeros(3))
        running_mean = np.zeros(3)
        running_var = np.ones(3)
        _, new_mean, new_var = F.batch_norm(
            Tensor(x), gamma, beta, running_mean, running_var, training=True, momentum=0.5
        )
        assert np.all(new_mean > 1.0)
        assert not np.allclose(new_var, 1.0)

    def test_eval_uses_running_stats(self):
        x = RNG.standard_normal((4, 2, 3, 3))
        gamma = Tensor(np.full(2, 2.0))
        beta = Tensor(np.full(2, 1.0))
        mean = np.array([0.5, -0.5])
        var = np.array([4.0, 1.0])
        out, _, _ = F.batch_norm(Tensor(x), gamma, beta, mean, var, training=False)
        expected = (x - mean.reshape(1, 2, 1, 1)) / np.sqrt(var.reshape(1, 2, 1, 1) + 1e-5) * 2.0 + 1.0
        np.testing.assert_allclose(out.data, expected, rtol=1e-4, atol=1e-5)

    def test_eval_without_stats_raises(self):
        with pytest.raises(ValueError):
            F.batch_norm(Tensor(np.zeros((2, 2))), Tensor(np.ones(2)), Tensor(np.zeros(2)), None, None, training=False)

    def test_2d_input_supported(self):
        x = RNG.standard_normal((10, 6))
        out, _, _ = F.batch_norm(Tensor(x), Tensor(np.ones(6)), Tensor(np.zeros(6)), None, None, training=True)
        np.testing.assert_allclose(out.data.mean(axis=0), np.zeros(6), atol=1e-5)

    def test_gradient_through_batch_statistics(self):
        x0 = RNG.standard_normal((6, 3))
        gamma0 = RNG.standard_normal(3) + 1.0

        def loss_fn(arr):
            out, _, _ = F.batch_norm(
                Tensor(arr, dtype=np.float64),
                Tensor(gamma0, dtype=np.float64),
                Tensor(np.zeros(3), dtype=np.float64),
                None,
                None,
                training=True,
            )
            return (out * np.arange(3)).sum()

        x = Tensor(x0, requires_grad=True, dtype=np.float64)
        out, _, _ = F.batch_norm(
            x, Tensor(gamma0, dtype=np.float64), Tensor(np.zeros(3), dtype=np.float64), None, None, training=True
        )
        (out * np.arange(3)).sum().backward()
        numeric = numeric_gradient(lambda arr: loss_fn(arr).item(), x0)
        np.testing.assert_allclose(x.grad, numeric, rtol=1e-4, atol=1e-5)

    def test_training_mode_is_one_fused_node(self):
        x = Tensor(RNG.standard_normal((6, 3)), requires_grad=True)
        out, _, _ = F.batch_norm(
            x, Tensor(np.ones(3)), Tensor(np.zeros(3)), None, None, training=True
        )
        assert isinstance(out._ctx, F.BatchNormFunction)

    @pytest.mark.parametrize("shape", [(6, 3), (4, 3, 5, 5)])
    def test_fused_parameter_gradients_match_numeric(self, shape):
        x0 = RNG.standard_normal(shape)
        gamma0 = RNG.standard_normal(shape[1]) + 1.0
        beta0 = RNG.standard_normal(shape[1])
        weights = RNG.standard_normal(shape)

        def loss_fn(gamma_arr, beta_arr):
            out, _, _ = F.batch_norm(
                Tensor(x0, dtype=np.float64),
                Tensor(gamma_arr, dtype=np.float64),
                Tensor(beta_arr, dtype=np.float64),
                None,
                None,
                training=True,
            )
            return (out * weights).sum()

        gamma = Tensor(gamma0, requires_grad=True, dtype=np.float64)
        beta = Tensor(beta0, requires_grad=True, dtype=np.float64)
        loss_fn_t = F.batch_norm(
            Tensor(x0, dtype=np.float64), gamma, beta, None, None, training=True
        )[0]
        (loss_fn_t * weights).sum().backward()
        numeric_gamma = numeric_gradient(
            lambda arr: loss_fn(arr, beta0).item(), gamma0
        )
        numeric_beta = numeric_gradient(
            lambda arr: loss_fn(gamma0, arr).item(), beta0
        )
        np.testing.assert_allclose(gamma.grad, numeric_gamma, rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(beta.grad, numeric_beta, rtol=1e-4, atol=1e-5)

    def test_4d_input_gradient_matches_numeric(self):
        x0 = RNG.standard_normal((3, 2, 4, 4))
        gamma0 = RNG.standard_normal(2) + 1.0
        weights = RNG.standard_normal(x0.shape)

        def loss_fn(arr):
            out, _, _ = F.batch_norm(
                Tensor(arr, dtype=np.float64),
                Tensor(gamma0, dtype=np.float64),
                Tensor(np.zeros(2), dtype=np.float64),
                None,
                None,
                training=True,
            )
            return (out * weights).sum()

        x = Tensor(x0, requires_grad=True, dtype=np.float64)
        out, _, _ = F.batch_norm(
            x,
            Tensor(gamma0, dtype=np.float64),
            Tensor(np.zeros(2), dtype=np.float64),
            None,
            None,
            training=True,
        )
        (out * weights).sum().backward()
        numeric = numeric_gradient(lambda arr: loss_fn(arr).item(), x0)
        np.testing.assert_allclose(x.grad, numeric, rtol=1e-4, atol=1e-5)


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = Tensor(RNG.standard_normal((4, 4)))
        out = F.dropout(x, 0.5, training=False)
        assert out is x

    def test_zero_probability_is_identity(self):
        x = Tensor(RNG.standard_normal((4, 4)))
        assert F.dropout(x, 0.0, training=True) is x

    def test_training_scales_surviving_activations(self):
        x = Tensor(np.ones((2000,)))
        out = F.dropout(x, 0.25, training=True, rng=np.random.default_rng(0))
        surviving = out.data[out.data != 0]
        np.testing.assert_allclose(surviving, np.full_like(surviving, 1.0 / 0.75))
        assert 0.65 < (out.data != 0).mean() < 0.85

    def test_invalid_probability_raises(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True)
