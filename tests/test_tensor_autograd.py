"""Gradient correctness tests for the autograd engine.

Every differentiable operation is checked against a central-difference
numerical gradient on small random inputs (float64 to keep the comparison
tight).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor

from tests.helpers import numeric_gradient

RNG = np.random.default_rng(42)
TOL = dict(rtol=1e-5, atol=1e-6)


def check_gradient(build_scalar, x0, tolerance=1e-5):
    """Compare autograd gradient of ``build_scalar(Tensor)`` with numerics."""
    x = Tensor(x0, requires_grad=True, dtype=np.float64)
    scalar = build_scalar(x)
    scalar.backward()
    numeric = numeric_gradient(lambda arr: build_scalar(Tensor(arr, dtype=np.float64)).item(), x0)
    assert x.grad is not None
    np.testing.assert_allclose(x.grad, numeric, rtol=tolerance, atol=tolerance)


class TestElementwiseGradients:
    def test_add_mul_chain(self):
        x0 = RNG.standard_normal((3, 4))
        check_gradient(lambda x: ((x * 3.0 + 1.0) * x).sum(), x0)

    def test_sub_div(self):
        x0 = RNG.standard_normal((3, 4)) + 3.0
        check_gradient(lambda x: ((x - 1.5) / (x + 2.0)).sum(), x0)

    def test_pow(self):
        x0 = np.abs(RNG.standard_normal((4,))) + 0.5
        check_gradient(lambda x: (x ** 3).sum(), x0)

    def test_exp_log_sqrt(self):
        x0 = np.abs(RNG.standard_normal((5,))) + 0.5
        check_gradient(lambda x: (x.exp() + x.log() + x.sqrt()).sum(), x0)

    def test_abs_clip(self):
        x0 = RNG.standard_normal((6,)) * 2
        check_gradient(lambda x: (x.abs() + x.clip(-1.0, 1.0)).sum(), x0)

    def test_activations(self):
        x0 = RNG.standard_normal((4, 4))
        check_gradient(lambda x: x.sigmoid().sum(), x0)
        check_gradient(lambda x: x.tanh().sum(), x0)
        check_gradient(lambda x: x.leaky_relu(0.2).sum(), x0)

    def test_relu_gradient_masks_negatives(self):
        x = Tensor(np.array([-2.0, 3.0], dtype=np.float64), requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0])

    def test_broadcast_add_unbroadcasts_gradient(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True, dtype=np.float64)
        b = Tensor(np.ones((4,)), requires_grad=True, dtype=np.float64)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_broadcast_mul_gradient(self):
        x0 = RNG.standard_normal((2, 3))
        scale = RNG.standard_normal((3,))
        check_gradient(lambda x: (x * scale).sum(), x0)


class TestReductionGradients:
    def test_sum_axis(self):
        x0 = RNG.standard_normal((3, 4))
        check_gradient(lambda x: (x.sum(axis=0) ** 2).sum(), x0)

    def test_mean_axis_keepdims(self):
        x0 = RNG.standard_normal((3, 4))
        check_gradient(lambda x: (x.mean(axis=1, keepdims=True) * x).sum(), x0)

    def test_max_reduction(self):
        x0 = RNG.standard_normal((3, 5))
        # Ensure unique maxima so the numerical gradient is well-defined.
        x0 += np.arange(15).reshape(3, 5) * 1e-3
        check_gradient(lambda x: x.max(axis=1).sum(), x0)

    def test_global_max(self):
        x0 = RNG.standard_normal((4, 4))
        x0[2, 2] = 10.0
        check_gradient(lambda x: x.max() * 2.0, x0)


class TestLinearAlgebraGradients:
    def test_matmul_both_sides(self):
        a0 = RNG.standard_normal((3, 4))
        b0 = RNG.standard_normal((4, 2))
        a = Tensor(a0, requires_grad=True, dtype=np.float64)
        b = Tensor(b0, requires_grad=True, dtype=np.float64)
        (a @ b).sum().backward()
        numeric_a = numeric_gradient(
            lambda arr: (Tensor(arr, dtype=np.float64) @ Tensor(b0, dtype=np.float64)).sum().item(), a0
        )
        numeric_b = numeric_gradient(
            lambda arr: (Tensor(a0, dtype=np.float64) @ Tensor(arr, dtype=np.float64)).sum().item(), b0
        )
        np.testing.assert_allclose(a.grad, numeric_a, **TOL)
        np.testing.assert_allclose(b.grad, numeric_b, **TOL)

    def test_linear_fused(self):
        x0 = RNG.standard_normal((5, 3))
        w0 = RNG.standard_normal((4, 3))
        b0 = RNG.standard_normal((4,))
        x = Tensor(x0, requires_grad=True, dtype=np.float64)
        w = Tensor(w0, requires_grad=True, dtype=np.float64)
        b = Tensor(b0, requires_grad=True, dtype=np.float64)
        (F.linear(x, w, b) ** 2).sum().backward()
        numeric_w = numeric_gradient(
            lambda arr: (F.linear(Tensor(x0, dtype=np.float64), Tensor(arr, dtype=np.float64), Tensor(b0, dtype=np.float64)) ** 2).sum().item(),
            w0,
        )
        np.testing.assert_allclose(w.grad, numeric_w, **TOL)
        assert b.grad.shape == (4,)
        assert x.grad.shape == (5, 3)


class TestShapeOpGradients:
    def test_reshape_transpose(self):
        x0 = RNG.standard_normal((2, 6))
        check_gradient(lambda x: (x.reshape(3, 4).transpose() ** 2).sum(), x0)

    def test_getitem(self):
        x0 = RNG.standard_normal((4, 5))
        check_gradient(lambda x: (x[1:3, ::2] ** 2).sum(), x0)

    def test_concatenate(self):
        x0 = RNG.standard_normal((2, 3))
        check_gradient(lambda x: (nn.concatenate([x, x * 2], axis=1) ** 2).sum(), x0)

    def test_softmax_gradients(self):
        x0 = RNG.standard_normal((3, 4))
        check_gradient(lambda x: (x.softmax(axis=-1) * np.arange(4)).sum(), x0)
        check_gradient(lambda x: (x.log_softmax(axis=-1) * np.arange(4)).sum(), x0)


class TestBackwardMechanics:
    def test_backward_requires_scalar_or_grad(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        x = Tensor(np.ones(2))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_gradient_accumulates_across_backward_calls(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2).sum().backward()
        (x * 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full(3, 4.0))

    def test_zero_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_accumulation(self):
        x = Tensor(np.array([2.0], dtype=np.float64), requires_grad=True)
        y = x * 3
        z = (y + y * y).sum()
        z.backward()
        # d/dx (3x + 9x^2) = 3 + 18x = 39 at x=2
        np.testing.assert_allclose(x.grad, [39.0])

    def test_leaf_only_gradients_by_default(self):
        x = Tensor(np.ones(2), requires_grad=True)
        y = x * 2
        y.sum().backward()
        assert x.grad is not None
        assert y.grad is None

    def test_deep_chain_does_not_hit_recursion_limit(self):
        x = Tensor(np.ones(4), requires_grad=True)
        out = x
        for _ in range(500):
            out = out + 1.0
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(4))


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=5),
    cols=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_sum_gradient_is_ones_property(rows, cols, seed):
    """Property: d(sum(x))/dx == 1 for every element, any shape."""
    data = np.random.default_rng(seed).standard_normal((rows, cols))
    x = Tensor(data, requires_grad=True, dtype=np.float64)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones((rows, cols)))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_softmax_rows_sum_to_one_property(seed):
    """Property: softmax output is a probability distribution per row."""
    data = np.random.default_rng(seed).standard_normal((4, 6)) * 5
    out = Tensor(data).softmax(axis=-1)
    assert np.all(out.data >= 0)
    np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4), rtol=1e-5)
