"""Shared test helpers (kept outside conftest so tests can import them)."""

from __future__ import annotations

import numpy as np


def numeric_gradient(func, x, eps=1e-4):
    """Central-difference numerical gradient of a scalar function of ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    for index in np.ndindex(*x.shape):
        plus = x.copy()
        minus = x.copy()
        plus[index] += eps
        minus[index] -= eps
        grad[index] = (func(plus) - func(minus)) / (2.0 * eps)
    return grad
