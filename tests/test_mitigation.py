"""Tests for the mitigation techniques: saliency, FAP, FAM and FAT."""

import numpy as np
import pytest

from repro import nn
from repro.accelerator import FaultMap, SystolicArray, model_fault_masks
from repro.mitigation import (
    apply_fam,
    apply_fap,
    build_fap_masks,
    compute_column_permutations,
    fault_aware_retrain,
    FaultAwareTrainer,
    get_saliency_metric,
    layer_column_permutation,
    magnitude_saliency,
    model_channel_saliency,
    output_channel_saliency,
    squared_saliency,
    verify_masks_enforced,
)
from repro.models import MLP
from repro.training import TrainingConfig, evaluate_accuracy


@pytest.fixture
def mlp_and_map(image_bundle):
    features = int(np.prod(image_bundle.input_shape))
    model = MLP(features, image_bundle.num_classes, hidden_sizes=(32,), seed=0)
    fault_map = FaultMap.random(16, 16, 0.25, seed=4)
    return model, fault_map


class TestSaliency:
    def test_magnitude_and_squared(self):
        matrix = np.array([[1.0, -2.0], [0.5, 0.0]])
        np.testing.assert_allclose(magnitude_saliency(matrix), np.abs(matrix))
        np.testing.assert_allclose(squared_saliency(matrix), matrix ** 2)

    def test_metric_lookup(self):
        assert get_saliency_metric("L1") is magnitude_saliency
        assert get_saliency_metric("l2") is squared_saliency
        with pytest.raises(KeyError):
            get_saliency_metric("taylor")

    def test_output_channel_saliency_shape(self):
        layer = nn.Linear(10, 6, rng=0)
        saliency = output_channel_saliency(layer)
        assert saliency.shape == (6,)
        assert np.all(saliency >= 0)

    def test_conv_channel_saliency(self):
        layer = nn.Conv2d(3, 5, 3, rng=0)
        assert output_channel_saliency(layer).shape == (5,)

    def test_model_channel_saliency(self, mlp_and_map):
        model, _ = mlp_and_map
        saliency = model_channel_saliency(model)
        assert set(saliency) == {"body.0", "body.2"}


class TestFAP:
    def test_apply_zeroes_masked_weights(self, mlp_and_map):
        model, fault_map = mlp_and_map
        result = apply_fap(model, fault_map)
        assert verify_masks_enforced(model, result.masks)
        assert result.masked_fraction == pytest.approx(0.25, abs=0.05)
        assert result.num_masked_weights > 0
        assert result.num_total_weights == sum(m.size for m in result.masks.values())
        assert set(result.per_layer_fraction) == set(result.masks)

    def test_accepts_systolic_array(self, mlp_and_map):
        model, fault_map = mlp_and_map
        array = SystolicArray(16, 16, fault_map=fault_map)
        masks = build_fap_masks(model, array)
        assert set(masks) == {"body.0", "body.2"}

    def test_fap_reduces_accuracy(self, image_bundle):
        from repro.training import Trainer

        features = int(np.prod(image_bundle.input_shape))
        model = MLP(features, image_bundle.num_classes, hidden_sizes=(24,), seed=0)
        Trainer(
            model, image_bundle.train, image_bundle.test,
            TrainingConfig(learning_rate=0.1, batch_size=16, seed=0),
        ).train(4.0)
        clean = evaluate_accuracy(model, image_bundle.test)
        apply_fap(model, FaultMap.random(16, 16, 0.6, seed=0))
        faulty = evaluate_accuracy(model, image_bundle.test)
        assert faulty <= clean

    def test_verify_detects_violation(self, mlp_and_map):
        model, fault_map = mlp_and_map
        result = apply_fap(model, fault_map)
        model.body[0].weight.data[result.masks["body.0"]] = 1.0
        assert not verify_masks_enforced(model, result.masks)

    def test_verify_handles_missing_layer(self, mlp_and_map):
        model, _ = mlp_and_map
        assert not verify_masks_enforced(model, {"ghost": np.zeros((2, 2), dtype=bool)})


class TestFAM:
    def test_permutation_is_valid(self, mlp_and_map):
        model, fault_map = mlp_and_map
        permutation = layer_column_permutation(model.body[0], fault_map)
        assert sorted(permutation.tolist()) == list(range(fault_map.cols))

    def test_permutations_for_all_layers(self, mlp_and_map):
        model, fault_map = mlp_and_map
        permutations = compute_column_permutations(model, fault_map)
        assert set(permutations) == {"body.0", "body.2"}

    def test_fam_does_not_increase_masked_saliency(self, mlp_and_map):
        model, fault_map = mlp_and_map
        result = apply_fam(model, fault_map, prune=False)
        assert result.masked_saliency <= result.baseline_masked_saliency + 1e-9
        assert 0.0 <= result.saliency_saving <= 1.0

    def test_fam_masks_same_count_on_aligned_layers(self, mlp_and_map):
        """For layers whose GEMM dims tile the array exactly, remapping columns
        cannot change how many weights land on faulty PEs (only which ones)."""
        model, fault_map = mlp_and_map
        fam = apply_fam(model, fault_map, prune=False)
        fap_masks = model_fault_masks(model, fault_map)
        # body.0 is 128x32 on a 16x16 array: both dimensions are exact multiples.
        assert fam.masks["body.0"].sum() == fap_masks["body.0"].sum()

    def test_fam_can_reduce_masked_weights_on_unaligned_layers(self, mlp_and_map):
        """The final layer uses only 4 of the 16 array columns; FAM may steer it
        away from faulty columns, so it never masks more weights than naive FAP."""
        model, fault_map = mlp_and_map
        fam = apply_fam(model, fault_map, prune=False)
        fap_masks = model_fault_masks(model, fault_map)
        total_fam = sum(int(m.sum()) for m in fam.masks.values())
        total_fap = sum(int(m.sum()) for m in fap_masks.values())
        assert total_fam <= total_fap + int(fap_masks["body.2"].sum())

    def test_prune_enforces_masks(self, mlp_and_map):
        model, fault_map = mlp_and_map
        result = apply_fam(model, fault_map, prune=True)
        assert verify_masks_enforced(model, result.masks)


class TestFAT:
    def test_retraining_recovers_accuracy(self, image_bundle):
        from repro.training import Trainer

        features = int(np.prod(image_bundle.input_shape))
        model = MLP(features, image_bundle.num_classes, hidden_sizes=(24,), seed=0)
        config = TrainingConfig(learning_rate=0.1, batch_size=16, seed=0)
        Trainer(model, image_bundle.train, image_bundle.test, config).train(4.0)

        fault_map = FaultMap.random(16, 16, 0.5, seed=1)
        result = fault_aware_retrain(
            model, fault_map, image_bundle, epochs=2.0, config=config,
            eval_checkpoints=[0.5, 1.0],
        )
        assert result.final_accuracy >= result.initial_accuracy
        assert result.epochs_trained == pytest.approx(2.0)
        assert verify_masks_enforced(model, result.masks)
        assert 0.0 < result.masked_fraction < 1.0
        assert result.history.epochs == [0.0, 0.5, 1.0, 2.0]

    def test_accepts_precomputed_masks(self, image_bundle):
        features = int(np.prod(image_bundle.input_shape))
        model = MLP(features, image_bundle.num_classes, hidden_sizes=(16,), seed=0)
        masks = build_fap_masks(model, FaultMap.random(8, 8, 0.2, seed=0))
        result = fault_aware_retrain(
            model, masks, image_bundle, epochs=0.25,
            config=TrainingConfig(learning_rate=0.05, batch_size=16, seed=0),
        )
        assert result.masks is masks

    def test_trainer_requires_masks(self, image_bundle):
        features = int(np.prod(image_bundle.input_shape))
        model = MLP(features, image_bundle.num_classes, hidden_sizes=(16,), seed=0)
        with pytest.raises(ValueError):
            FaultAwareTrainer(model, None, image_bundle.train, image_bundle.test)
