"""Tests for individual layers (shapes, modes, parameter handling)."""

import numpy as np
import pytest

from repro import nn

RNG = np.random.default_rng(5)


class TestLinear:
    def test_shapes_and_bias(self):
        layer = nn.Linear(6, 4, rng=0)
        out = layer(nn.Tensor(RNG.standard_normal((3, 6)).astype(np.float32)))
        assert out.shape == (3, 4)
        assert layer.weight.shape == (4, 6)
        assert layer.bias.shape == (4,)

    def test_no_bias(self):
        layer = nn.Linear(6, 4, bias=False, rng=0)
        assert layer.bias is None
        assert set(dict(layer.named_parameters())) == {"weight"}

    def test_flattens_higher_rank_inputs(self):
        layer = nn.Linear(12, 2, rng=0)
        out = layer(nn.Tensor(RNG.standard_normal((5, 3, 2, 2)).astype(np.float32)))
        assert out.shape == (5, 2)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            nn.Linear(0, 4)

    def test_deterministic_with_seed(self):
        a = nn.Linear(5, 5, rng=123)
        b = nn.Linear(5, 5, rng=123)
        np.testing.assert_allclose(a.weight.data, b.weight.data)


class TestConv2d:
    def test_output_shape(self):
        layer = nn.Conv2d(3, 8, kernel_size=3, stride=1, padding=1, rng=0)
        out = layer(nn.Tensor(RNG.standard_normal((2, 3, 10, 10)).astype(np.float32)))
        assert out.shape == (2, 8, 10, 10)
        assert layer.output_spatial_size((10, 10)) == (10, 10)

    def test_stride_changes_spatial_size(self):
        layer = nn.Conv2d(1, 4, kernel_size=3, stride=2, padding=1, rng=0)
        assert layer.output_spatial_size((9, 9)) == (5, 5)

    def test_no_bias_option(self):
        layer = nn.Conv2d(2, 4, 3, bias=False, rng=0)
        assert layer.bias is None

    def test_invalid_channels(self):
        with pytest.raises(ValueError):
            nn.Conv2d(0, 3, 3)


class TestBatchNorm:
    def test_running_stats_updated_in_train_only(self):
        layer = nn.BatchNorm2d(3)
        x = nn.Tensor((RNG.standard_normal((8, 3, 4, 4)) + 4).astype(np.float32))
        layer(x)
        mean_after_train = layer.running_mean.copy()
        assert not np.allclose(mean_after_train, 0)
        layer.eval()
        layer(x)
        np.testing.assert_allclose(layer.running_mean, mean_after_train)

    def test_eval_output_uses_running_stats(self):
        layer = nn.BatchNorm2d(2)
        x = nn.Tensor(RNG.standard_normal((4, 2, 3, 3)).astype(np.float32))
        layer.eval()
        out = layer(x)
        expected = (x.data - layer.running_mean.reshape(1, 2, 1, 1)) / np.sqrt(
            layer.running_var.reshape(1, 2, 1, 1) + layer.eps
        )
        np.testing.assert_allclose(out.data, expected, rtol=1e-4, atol=1e-5)

    def test_state_dict_includes_running_stats(self):
        layer = nn.BatchNorm2d(4)
        state = layer.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_batchnorm1d_rejects_4d(self):
        layer = nn.BatchNorm1d(4)
        with pytest.raises(ValueError):
            layer(nn.Tensor(np.zeros((2, 4, 3, 3), dtype=np.float32)))

    def test_invalid_features(self):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(0)


class TestPoolingAndShape:
    def test_maxpool_module(self):
        layer = nn.MaxPool2d(2)
        out = layer(nn.Tensor(RNG.standard_normal((1, 2, 8, 8)).astype(np.float32)))
        assert out.shape == (1, 2, 4, 4)

    def test_avgpool_module(self):
        layer = nn.AvgPool2d(2, stride=2)
        out = layer(nn.Tensor(RNG.standard_normal((1, 2, 6, 6)).astype(np.float32)))
        assert out.shape == (1, 2, 3, 3)

    def test_global_avg_pool(self):
        layer = nn.GlobalAvgPool2d()
        out = layer(nn.Tensor(RNG.standard_normal((3, 5, 7, 7)).astype(np.float32)))
        assert out.shape == (3, 5)

    def test_flatten(self):
        layer = nn.Flatten()
        out = layer(nn.Tensor(np.zeros((2, 3, 4, 4), dtype=np.float32)))
        assert out.shape == (2, 48)

    def test_identity(self):
        x = nn.Tensor(np.ones((2, 2)))
        assert nn.Identity()(x) is x


class TestDropoutLayer:
    def test_train_vs_eval(self):
        layer = nn.Dropout(0.5, rng=0)
        x = nn.Tensor(np.ones((10, 10), dtype=np.float32))
        train_out = layer(x)
        assert (train_out.data == 0).any()
        layer.eval()
        eval_out = layer(x)
        np.testing.assert_allclose(eval_out.data, x.data)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)


class TestActivationsAndHeads:
    def test_activation_modules(self):
        x = nn.Tensor(np.array([[-1.0, 2.0]], dtype=np.float32))
        assert np.allclose(nn.ReLU()(x).data, [[0, 2]])
        assert np.allclose(nn.LeakyReLU(0.1)(x).data, [[-0.1, 2]])
        assert nn.Sigmoid()(x).data.shape == (1, 2)
        assert nn.Tanh()(x).data.shape == (1, 2)

    def test_softmax_modules(self):
        x = nn.Tensor(RNG.standard_normal((3, 4)).astype(np.float32))
        probs = nn.Softmax()(x)
        np.testing.assert_allclose(probs.data.sum(axis=-1), np.ones(3), rtol=1e-5)
        logp = nn.LogSoftmax()(x)
        np.testing.assert_allclose(np.exp(logp.data).sum(axis=-1), np.ones(3), rtol=1e-5)
