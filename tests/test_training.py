"""Tests for the training loop: fractional epochs, checkpoints, mask enforcement."""

import numpy as np
import pytest

from repro import nn
from repro.data import DataLoader
from repro.models import MLP
from repro.training import (
    Trainer,
    TrainingConfig,
    apply_weight_masks,
    epochs_to_steps,
    evaluate_accuracy,
    evaluate_loss,
    mask_gradients,
    train_classifier,
)


class TestTrainingConfig:
    def test_defaults_valid(self):
        config = TrainingConfig()
        assert config.optimizer == "sgd"

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(optimizer="lbfgs")
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            TrainingConfig(batch_size=0)

    def test_build_optimizer_variants(self):
        params = MLP(4, 2, hidden_sizes=(), seed=0).parameters()
        assert isinstance(TrainingConfig(optimizer="sgd").build_optimizer(params), nn.SGD)
        assert isinstance(TrainingConfig(optimizer="adam").build_optimizer(params), nn.Adam)
        assert isinstance(TrainingConfig(optimizer="adamw").build_optimizer(params), nn.AdamW)


class TestEpochAccounting:
    def test_epochs_to_steps(self):
        assert epochs_to_steps(0.0, 10) == 0
        assert epochs_to_steps(0.05, 10) == 1  # at least one step for tiny amounts
        assert epochs_to_steps(1.0, 10) == 10
        assert epochs_to_steps(2.5, 10) == 25
        with pytest.raises(ValueError):
            epochs_to_steps(-1.0, 10)
        with pytest.raises(ValueError):
            epochs_to_steps(1.0, 0)


class TestEvaluation:
    def test_accuracy_and_loss(self, blob_bundle):
        model = MLP(blob_bundle.input_shape[0], blob_bundle.num_classes, hidden_sizes=(16,), seed=0)
        accuracy = evaluate_accuracy(model, blob_bundle.test)
        loss = evaluate_loss(model, blob_bundle.test)
        assert 0.0 <= accuracy <= 1.0
        assert loss > 0

    def test_accepts_dataloader(self, blob_bundle):
        model = MLP(blob_bundle.input_shape[0], blob_bundle.num_classes, hidden_sizes=(16,), seed=0)
        loader = DataLoader(blob_bundle.test, batch_size=8)
        assert 0.0 <= evaluate_accuracy(model, loader) <= 1.0

    def test_restores_training_mode(self, blob_bundle):
        model = MLP(blob_bundle.input_shape[0], blob_bundle.num_classes, hidden_sizes=(16,), seed=0)
        model.train()
        evaluate_accuracy(model, blob_bundle.test)
        assert model.training
        model.eval()
        evaluate_accuracy(model, blob_bundle.test)
        assert not model.training


class TestMaskHelpers:
    def test_apply_weight_masks(self):
        model = MLP(6, 3, hidden_sizes=(4,), seed=0)
        masks = {"body.0": np.zeros((4, 6), dtype=bool)}
        masks["body.0"][0, :] = True
        apply_weight_masks(model, masks)
        np.testing.assert_allclose(model.body[0].weight.data[0], np.zeros(6))
        assert not np.allclose(model.body[0].weight.data[1], 0)

    def test_apply_none_is_noop(self):
        model = MLP(6, 3, hidden_sizes=(4,), seed=0)
        before = model.body[0].weight.data.copy()
        apply_weight_masks(model, None)
        np.testing.assert_allclose(model.body[0].weight.data, before)

    def test_unknown_layer_raises(self):
        model = MLP(6, 3, hidden_sizes=(4,), seed=0)
        with pytest.raises(KeyError):
            apply_weight_masks(model, {"nope": np.zeros((4, 6), dtype=bool)})

    def test_shape_mismatch_raises(self):
        model = MLP(6, 3, hidden_sizes=(4,), seed=0)
        with pytest.raises(ValueError):
            apply_weight_masks(model, {"body.0": np.zeros((2, 2), dtype=bool)})

    def test_mask_gradients(self):
        model = MLP(6, 3, hidden_sizes=(4,), seed=0)
        x = nn.Tensor(np.ones((2, 6), dtype=np.float32))
        model(x).sum().backward()
        mask = np.zeros((4, 6), dtype=bool)
        mask[1, :] = True
        mask_gradients(model, {"body.0": mask})
        np.testing.assert_allclose(model.body[0].weight.grad[1], np.zeros(6))


class TestTrainer:
    def _make(self, bundle, masks=None, lr=0.1):
        model = MLP(bundle.input_shape[0], bundle.num_classes, hidden_sizes=(24,), seed=0)
        config = TrainingConfig(learning_rate=lr, batch_size=16, seed=0)
        return model, Trainer(model, bundle.train, bundle.test, config=config, masks=masks)

    def test_training_improves_accuracy(self, blob_bundle):
        model, trainer = self._make(blob_bundle)
        history = trainer.train(3.0)
        assert history.records[0].eval_accuracy < history.final_accuracy
        assert history.final_accuracy > 0.8
        assert history.total_epochs == pytest.approx(3.0)

    def test_fractional_epoch_runs_at_least_one_step(self, blob_bundle):
        model, trainer = self._make(blob_bundle)
        history = trainer.train(0.05)
        assert trainer.steps_taken >= 1
        assert history.total_epochs == pytest.approx(0.05)

    def test_checkpoints_recorded_in_order(self, blob_bundle):
        model, trainer = self._make(blob_bundle)
        history = trainer.train(1.0, eval_checkpoints=[0.25, 0.5])
        assert history.epochs == [0.0, 0.25, 0.5, 1.0]
        assert all(
            later.steps >= earlier.steps
            for earlier, later in zip(history.records, history.records[1:])
        )

    def test_zero_epochs_only_evaluates(self, blob_bundle):
        model, trainer = self._make(blob_bundle)
        history = trainer.train(0.0)
        assert trainer.steps_taken == 0
        assert len(history.records) == 1

    def test_masks_enforced_throughout_training(self, blob_bundle):
        model = MLP(blob_bundle.input_shape[0], blob_bundle.num_classes, hidden_sizes=(24,), seed=0)
        mask = np.zeros((24, blob_bundle.input_shape[0]), dtype=bool)
        mask[::2, :] = True
        masks = {"body.0": mask}
        trainer = Trainer(
            model, blob_bundle.train, blob_bundle.test,
            config=TrainingConfig(learning_rate=0.1, batch_size=16, seed=0), masks=masks,
        )
        # Masked at construction (FAP applied).
        np.testing.assert_allclose(model.body[0].weight.data[mask], 0.0)
        trainer.train(1.0)
        np.testing.assert_allclose(model.body[0].weight.data[mask], 0.0)
        # Unmasked weights must have been updated.
        assert not np.allclose(model.body[0].weight.data[~mask], 0.0)

    def test_epochs_taken_property(self, blob_bundle):
        model, trainer = self._make(blob_bundle)
        trainer.train(0.5)
        assert trainer.epochs_taken == pytest.approx(0.5, abs=0.1)

    def test_negative_epochs_rejected(self, blob_bundle):
        _, trainer = self._make(blob_bundle)
        with pytest.raises(ValueError):
            trainer.train(-1.0)


class TestEmptyLoaderGuard:
    def test_empty_dataset_rejected_at_construction(self, blob_bundle):
        from repro.data.dataset import TensorDataset

        empty = TensorDataset(
            np.zeros((0, 8), dtype=np.float32), np.zeros((0,), dtype=np.int64)
        )
        model = MLP(8, blob_bundle.num_classes, hidden_sizes=(8,), seed=0)
        with pytest.raises(ValueError, match="no batches"):
            Trainer(model, empty, blob_bundle.test, config=TrainingConfig(batch_size=16))

    def test_drop_last_smaller_than_batch_rejected(self, blob_bundle):
        # drop_last with fewer samples than one batch yields a zero-batch
        # loader; before the guard this spun _train_steps forever.
        loader = DataLoader(
            blob_bundle.train, batch_size=10_000, shuffle=True, drop_last=True, seed=0
        )
        model = MLP(8, blob_bundle.num_classes, hidden_sizes=(8,), seed=0)
        with pytest.raises(ValueError, match="no batches"):
            Trainer(model, loader, blob_bundle.test)

    def test_one_batch_loader_still_trains(self, blob_bundle):
        model = MLP(8, blob_bundle.num_classes, hidden_sizes=(8,), seed=0)
        loader = DataLoader(blob_bundle.train, batch_size=10_000, shuffle=False)
        trainer = Trainer(model, loader, blob_bundle.test)
        trainer.train(1.0, include_initial=False)
        assert trainer.steps_taken == 1


class TestEvaluationRngIsolation:
    def _train_history(self, blob_bundle, interleave):
        from repro.training import evaluate_accuracy, evaluate_loss

        model = MLP(8, blob_bundle.num_classes, hidden_sizes=(16,), seed=2)
        config = TrainingConfig(learning_rate=0.05, batch_size=16, seed=9)
        trainer = Trainer(model, blob_bundle.train, blob_bundle.test, config=config)
        histories = []
        for _ in range(3):
            histories.append(trainer.train(0.5, include_initial=False))
            if interleave:
                # Evaluating through the *shuffled training loader* must not
                # advance its RNG (it used to, changing every later batch).
                evaluate_accuracy(model, trainer.train_loader)
                evaluate_loss(model, trainer.train_loader)
        return [h.final_accuracy for h in histories], model.state_dict()

    def test_interleaved_evaluation_does_not_change_training(self, blob_bundle):
        plain_accs, plain_state = self._train_history(blob_bundle, interleave=False)
        mixed_accs, mixed_state = self._train_history(blob_bundle, interleave=True)
        assert plain_accs == mixed_accs
        for name in plain_state:
            np.testing.assert_array_equal(plain_state[name], mixed_state[name])

    def test_shuffled_loader_rng_untouched_by_evaluation(self, blob_bundle):
        from repro.training import evaluate_accuracy

        loader = DataLoader(blob_bundle.train, batch_size=16, shuffle=True, seed=11)
        model = MLP(8, blob_bundle.num_classes, hidden_sizes=(8,), seed=0)
        evaluate_accuracy(model, loader)
        first_after_eval = next(iter(loader))[1]
        fresh = DataLoader(blob_bundle.train, batch_size=16, shuffle=True, seed=11)
        np.testing.assert_array_equal(first_after_eval, next(iter(fresh))[1])


class TestTrainingHistory:
    def test_history_queries(self, blob_bundle):
        model = MLP(blob_bundle.input_shape[0], blob_bundle.num_classes, hidden_sizes=(24,), seed=0)
        history = train_classifier(
            model, blob_bundle.train, blob_bundle.test, epochs=2.0,
            config=TrainingConfig(learning_rate=0.1, batch_size=16, seed=0),
            eval_checkpoints=[0.5, 1.0],
        )
        assert history.accuracy_at(1.0) == history.records[2].eval_accuracy
        target = history.final_accuracy
        assert history.epochs_to_reach(target) is not None
        assert history.epochs_to_reach(1.1) is None
        payload = history.as_dict()
        assert set(payload) == {"epochs", "accuracy", "train_loss"}

    def test_empty_history_raises(self):
        from repro.training import TrainingHistory

        history = TrainingHistory()
        with pytest.raises(ValueError):
            _ = history.final_accuracy
        with pytest.raises(ValueError):
            history.accuracy_at(1.0)
        assert history.total_epochs == 0.0

    def test_accuracy_at_far_checkpoint_warns_and_strict_raises(self, caplog, monkeypatch):
        import logging

        from repro.training import CheckpointRecord, TrainingHistory

        # The library's logger hierarchy does not propagate to the root
        # logger; let it through so caplog can observe the warning.
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        history = TrainingHistory()
        history.add(CheckpointRecord(epochs=0.05, steps=1, train_loss=1.0, eval_accuracy=0.5))
        # Within tolerance: exact checkpoint, no warning.
        with caplog.at_level(logging.WARNING, logger="repro.training"):
            assert history.accuracy_at(0.05) == 0.5
        assert not caplog.records
        # The nearest checkpoint is 100x away from the request: previously
        # this silently returned 0.5 as if it were the 5.0-epoch accuracy.
        with caplog.at_level(logging.WARNING, logger="repro.training"):
            assert history.accuracy_at(5.0) == 0.5
        assert any("accuracy_at" in record.message for record in caplog.records)
        with pytest.raises(ValueError, match="nearest recorded checkpoint"):
            history.accuracy_at(5.0, strict=True)


class TestDropoutDeterminism:
    def _run(self, blob_bundle, seed):
        model = MLP(8, blob_bundle.num_classes, hidden_sizes=(32,), dropout=0.5, seed=4)
        config = TrainingConfig(learning_rate=0.05, batch_size=16, seed=seed)
        trainer = Trainer(model, blob_bundle.train, blob_bundle.test, config=config)
        history = trainer.train(1.0, include_initial=False)
        return history.records[-1].train_loss, model.state_dict()

    def test_same_seed_same_dropout_trajectory(self, blob_bundle):
        """Dropout layers draw from the trainer-derived seed, so two runs with
        the same config are bit-identical even though the model's Dropout was
        constructed without an explicit rng."""
        loss_a, state_a = self._run(blob_bundle, seed=7)
        loss_b, state_b = self._run(blob_bundle, seed=7)
        assert loss_a == loss_b
        for name in state_a:
            np.testing.assert_array_equal(state_a[name], state_b[name])

    def test_different_seed_different_masks(self, blob_bundle):
        loss_a, state_a = self._run(blob_bundle, seed=7)
        loss_b, state_b = self._run(blob_bundle, seed=8)
        assert any(
            not np.array_equal(state_a[name], state_b[name]) for name in state_a
        )

    def test_functional_dropout_default_rng_is_deterministic_generator(self):
        """The rng-less functional path must not create a fresh unseeded
        generator per call (the old behaviour, which made otherwise-seeded
        runs nondeterministic): it draws from one module-level seeded stream."""
        from repro.nn import functional as F

        x = nn.Tensor(np.ones((4, 8), dtype=np.float32))
        original = F._FALLBACK_DROPOUT_RNG
        try:
            F._FALLBACK_DROPOUT_RNG = np.random.default_rng(123)
            first = F.dropout(x, 0.5, training=True).data.copy()
            F._FALLBACK_DROPOUT_RNG = np.random.default_rng(123)
            replay = F.dropout(x, 0.5, training=True).data.copy()
        finally:
            F._FALLBACK_DROPOUT_RNG = original
        np.testing.assert_array_equal(first, replay)
