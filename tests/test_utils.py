"""Tests for utility helpers: RNG management, config serialization, timing, logging."""

import dataclasses
import logging
import time

import numpy as np
import pytest

from repro.utils import (
    ConfigError,
    Timer,
    config_from_dict,
    config_to_dict,
    derive_seed,
    format_duration,
    get_logger,
    load_json,
    new_rng,
    save_json,
    set_verbosity,
    spawn_rngs,
)
from repro.utils.rng import RngMixin, choice_without_replacement, shuffled_indices, split_indices


class TestRng:
    def test_new_rng_variants(self):
        assert isinstance(new_rng(None), np.random.Generator)
        seeded = new_rng(42)
        assert seeded.integers(0, 100) == new_rng(42).integers(0, 100)
        generator = np.random.default_rng(0)
        assert new_rng(generator) is generator

    def test_derive_seed_deterministic_and_distinct(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)
        assert derive_seed(1, "a", 2) != derive_seed(1, "a", 3)
        assert derive_seed(1, "a") != derive_seed(2, "a")
        assert 0 <= derive_seed(7, "x") < 2 ** 63

    def test_spawn_rngs(self):
        rngs = spawn_rngs(0, 3)
        assert len(rngs) == 3
        values = [r.integers(0, 10**9) for r in rngs]
        assert len(set(values)) == 3
        assert spawn_rngs(0, 0) == []
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_rng_mixin(self):
        class Thing(RngMixin):
            pass

        thing = Thing(5)
        first = thing.rng.integers(0, 1000)
        thing.reseed(5)
        assert thing.rng.integers(0, 1000) == first

    def test_choice_without_replacement(self):
        rng = np.random.default_rng(0)
        picked = choice_without_replacement(rng, list(range(10)), 5)
        assert len(set(picked.tolist())) == 5
        with pytest.raises(ValueError):
            choice_without_replacement(rng, [1, 2], 5)

    def test_shuffled_and_split_indices(self):
        rng = np.random.default_rng(0)
        assert sorted(shuffled_indices(rng, 10).tolist()) == list(range(10))
        groups = split_indices(rng, 10, [0.5, 0.5])
        assert sum(len(g) for g in groups) == 10
        with pytest.raises(ValueError):
            split_indices(rng, 10, [0.8, 0.5])
        with pytest.raises(ValueError):
            split_indices(rng, 10, [-0.1, 0.5])


@dataclasses.dataclass
class InnerConfig:
    value: int = 3


@dataclasses.dataclass
class OuterConfig:
    name: str = "x"
    rate: float = 0.5
    inner: InnerConfig = dataclasses.field(default_factory=InnerConfig)
    values: tuple = (1, 2, 3)


class TestConfig:
    def test_round_trip(self):
        config = OuterConfig(name="test", rate=0.25, inner=InnerConfig(7), values=(4, 5))
        payload = config_to_dict(config)
        assert payload["inner"] == {"value": 7}
        restored = config_from_dict(OuterConfig, payload)
        assert restored.name == "test"
        assert restored.inner.value == 7

    def test_numpy_values_serializable(self):
        @dataclasses.dataclass
        class WithArray:
            data: np.ndarray = dataclasses.field(default_factory=lambda: np.arange(3))
            scalar: float = np.float64(1.5)

        payload = config_to_dict(WithArray())
        assert payload["data"] == [0, 1, 2]
        assert payload["scalar"] == 1.5

    def test_unknown_keys_ignored(self):
        restored = config_from_dict(OuterConfig, {"name": "y", "bogus": 1})
        assert restored.name == "y"

    def test_errors(self):
        with pytest.raises(ConfigError):
            config_to_dict({"not": "a dataclass"})
        with pytest.raises(ConfigError):
            config_from_dict(dict, {})

        @dataclasses.dataclass
        class Bad:
            thing: object = None

        with pytest.raises(ConfigError):
            config_to_dict(Bad(thing=object()))

    def test_save_and_load_json(self, tmp_path):
        path = save_json(OuterConfig(), tmp_path / "nested" / "config.json")
        loaded = load_json(path)
        assert loaded["name"] == "x"
        assert loaded["values"] == [1, 2, 3]


class TestTiming:
    def test_format_duration(self):
        assert format_duration(0.0000005).endswith("us")
        assert format_duration(0.5).endswith("ms")
        assert format_duration(5).endswith("s")
        assert "m" in format_duration(90)
        assert "h" in format_duration(7200)
        with pytest.raises(ValueError):
            format_duration(-1)

    def test_format_duration_unit_boundaries(self):
        # Values just under a unit boundary must carry into the next unit
        # instead of rendering an impossible component like "1m60.0s".
        assert format_duration(119.99) == "2m00.0s"
        assert format_duration(59.999) == "1m00.0s"
        assert format_duration(3599.99) == "1h00m"
        assert format_duration(0.99999) == "1.00s"
        assert format_duration(0.00099999) == "1.0ms"

    def test_format_duration_exact_values(self):
        assert format_duration(0.0) == "0us"
        assert format_duration(60.0) == "1m00.0s"
        assert format_duration(90.0) == "1m30.0s"
        assert format_duration(3599.94) == "59m59.9s"
        assert format_duration(3600.0) == "1h00m"
        assert format_duration(5400.0) == "1h30m"

    def test_timer_context(self):
        with Timer("test") as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005
        assert not timer.running
        assert "test" in repr(timer)

    def test_timer_manual_and_errors(self):
        timer = Timer()
        with pytest.raises(RuntimeError):
            timer.stop()
        timer.start()
        assert timer.running
        timer.stop()
        timer.reset()
        assert timer.elapsed == 0.0


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("core.reduce").name == "repro.core.reduce"
        assert get_logger("repro.nn").name == "repro.nn"

    def test_set_verbosity(self):
        set_verbosity(2)
        assert logging.getLogger("repro").level == logging.DEBUG
        set_verbosity(0)
        assert logging.getLogger("repro").level == logging.WARNING
