"""Tests for datasets, loaders, transforms and synthetic data generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    Compose,
    DataLoader,
    Dataset,
    GaussianNoise,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    Subset,
    TensorDataset,
    ToFloat32,
    TransformedDataset,
    channel_statistics,
    full_batch,
    make_blob_classification,
    make_class_template_images,
    make_cifar10_like,
    random_split,
    stratified_split,
)

RNG = np.random.default_rng(0)


class TestTensorDataset:
    def test_length_and_indexing(self):
        ds = TensorDataset(np.arange(20).reshape(10, 2), np.arange(10))
        assert len(ds) == 10
        x, y = ds[3]
        assert np.array_equal(x, [6, 7]) and y == 3

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            TensorDataset(np.zeros((3, 2)), np.zeros(4))

    def test_num_classes(self):
        ds = TensorDataset(np.zeros((6, 2)), np.array([0, 1, 2, 2, 1, 0]))
        assert ds.num_classes == 3

    def test_base_dataset_is_abstract(self):
        with pytest.raises(NotImplementedError):
            len(Dataset())


class TestSubsetAndSplits:
    def test_subset_indexing(self):
        ds = TensorDataset(np.arange(10).reshape(10, 1), np.arange(10))
        subset = Subset(ds, [2, 4, 6])
        assert len(subset) == 3
        assert subset[1][1] == 4
        assert subset.num_classes == 10

    def test_subset_out_of_range(self):
        ds = TensorDataset(np.zeros((3, 1)), np.zeros(3, dtype=np.int64))
        with pytest.raises(IndexError):
            Subset(ds, [5])

    def test_random_split_uses_every_sample(self):
        ds = TensorDataset(np.zeros((17, 1)), np.zeros(17, dtype=np.int64))
        parts = random_split(ds, [0.5, 0.3, 0.2], seed=0)
        assert sum(len(p) for p in parts) == 17
        all_indices = np.concatenate([p.indices for p in parts])
        assert len(np.unique(all_indices)) == 17

    def test_random_split_invalid_fractions(self):
        ds = TensorDataset(np.zeros((4, 1)), np.zeros(4, dtype=np.int64))
        with pytest.raises(ValueError):
            random_split(ds, [0.5, 0.2], seed=0)

    def test_stratified_split_preserves_classes(self):
        targets = np.repeat(np.arange(4), 10)
        ds = TensorDataset(np.zeros((40, 1)), targets)
        train, test = stratified_split(ds, test_fraction=0.25, seed=0)
        test_labels = [int(ds[i][1]) for i in test.indices]
        assert sorted(set(test_labels)) == [0, 1, 2, 3]
        assert len(train) + len(test) == 40

    def test_transformed_dataset(self):
        ds = TensorDataset(np.ones((4, 2)), np.zeros(4, dtype=np.int64))
        doubled = TransformedDataset(ds, lambda x: x * 2)
        assert np.all(doubled[0][0] == 2)
        assert doubled.num_classes == 1


class TestDataLoader:
    def _dataset(self, n=23):
        return TensorDataset(np.arange(n * 2, dtype=np.float32).reshape(n, 2), np.arange(n) % 3)

    def test_batch_shapes_and_count(self):
        loader = DataLoader(self._dataset(), batch_size=5)
        batches = list(loader)
        assert len(loader) == 5
        assert len(batches) == 5
        assert batches[0][0].shape == (5, 2)
        assert batches[-1][0].shape == (3, 2)

    def test_drop_last(self):
        loader = DataLoader(self._dataset(), batch_size=5, drop_last=True)
        assert len(loader) == 4
        assert all(x.shape[0] == 5 for x, _ in loader)

    def test_shuffle_changes_order_but_not_content(self):
        loader = DataLoader(self._dataset(), batch_size=23, shuffle=True, seed=0)
        (x1, y1), = list(loader)
        (x2, y2), = list(loader)
        assert not np.array_equal(y1, y2) or not np.array_equal(x1.data, x2.data)
        assert sorted(y1.tolist()) == sorted(y2.tolist())

    def test_no_shuffle_is_deterministic(self):
        loader = DataLoader(self._dataset(), batch_size=4, shuffle=False)
        first = np.concatenate([y for _, y in loader])
        second = np.concatenate([y for _, y in loader])
        np.testing.assert_array_equal(first, second)

    def test_take_limits_batches(self):
        loader = DataLoader(self._dataset(), batch_size=4)
        assert len(list(loader.take(2))) == 2
        assert len(list(loader.take(0))) == 0
        with pytest.raises(ValueError):
            list(loader.take(-1))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(self._dataset(), batch_size=0)

    def test_full_batch(self):
        x, y = full_batch(self._dataset(8))
        assert x.shape == (8, 2) and y.shape == (8,)

    def test_inputs_are_float32_tensors(self):
        x, _ = next(iter(DataLoader(self._dataset(), batch_size=3)))
        assert x.dtype == np.float32


class TestTransforms:
    def test_normalize(self):
        image = np.ones((3, 4, 4), dtype=np.float32)
        out = Normalize([1.0, 1.0, 1.0], [2.0, 2.0, 2.0])(image)
        np.testing.assert_allclose(out, np.zeros_like(image))
        with pytest.raises(ValueError):
            Normalize([0.0], [0.0])

    def test_horizontal_flip(self):
        image = np.arange(8, dtype=np.float32).reshape(1, 2, 4)
        flipped = RandomHorizontalFlip(p=1.0, seed=0)(image)
        np.testing.assert_array_equal(flipped[0, 0], [3, 2, 1, 0])
        unflipped = RandomHorizontalFlip(p=0.0, seed=0)(image)
        np.testing.assert_array_equal(unflipped, image)

    def test_random_crop(self):
        image = RNG.standard_normal((3, 8, 8)).astype(np.float32)
        cropped = RandomCrop(6, seed=0)(image)
        assert cropped.shape == (3, 6, 6)
        padded_crop = RandomCrop(8, padding=2, seed=0)(image)
        assert padded_crop.shape == (3, 8, 8)
        with pytest.raises(ValueError):
            RandomCrop(20)(image)

    def test_gaussian_noise_and_compose(self):
        image = np.zeros((1, 4, 4), dtype=np.float32)
        pipeline = Compose([GaussianNoise(0.1, seed=0), ToFloat32()])
        out = pipeline(image)
        assert out.dtype == np.float32
        assert out.std() > 0
        assert "Compose" in repr(pipeline)

    def test_channel_statistics(self):
        images = RNG.standard_normal((10, 3, 4, 4))
        mean, std = channel_statistics(images)
        assert mean.shape == (3,) and std.shape == (3,)
        with pytest.raises(ValueError):
            channel_statistics(np.zeros((3, 4, 4)))


class TestSyntheticData:
    def test_class_template_images_shapes(self):
        bundle = make_class_template_images(
            num_classes=5, train_per_class=6, test_per_class=3, image_size=10, channels=3, seed=0
        )
        assert len(bundle.train) == 30 and len(bundle.test) == 15
        assert bundle.input_shape == (3, 10, 10)
        assert bundle.num_classes == 5
        x, y = bundle.train[0]
        assert x.shape == (3, 10, 10) and 0 <= y < 5
        assert bundle.image_channels == 3 and bundle.image_size == 10
        assert "train" in bundle.summary()

    def test_deterministic_given_seed(self):
        a = make_class_template_images(num_classes=3, train_per_class=4, test_per_class=2, image_size=8, seed=5)
        b = make_class_template_images(num_classes=3, train_per_class=4, test_per_class=2, image_size=8, seed=5)
        np.testing.assert_allclose(a.train.inputs, b.train.inputs)
        np.testing.assert_array_equal(a.train.targets, b.train.targets)

    def test_different_seeds_differ(self):
        a = make_class_template_images(num_classes=3, train_per_class=4, test_per_class=2, image_size=8, seed=1)
        b = make_class_template_images(num_classes=3, train_per_class=4, test_per_class=2, image_size=8, seed=2)
        assert not np.allclose(a.train.inputs, b.train.inputs)

    def test_all_classes_present(self):
        bundle = make_class_template_images(num_classes=6, train_per_class=3, test_per_class=2, image_size=8, seed=0)
        assert set(np.unique(bundle.train.targets)) == set(range(6))

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            make_class_template_images(num_classes=1)
        with pytest.raises(ValueError):
            make_class_template_images(noise_std=-1.0)
        with pytest.raises(ValueError):
            make_class_template_images(image_size=2, template_grid=4)

    def test_cifar10_like_shape(self):
        bundle = make_cifar10_like(train_per_class=2, test_per_class=1, image_size=16, seed=0)
        assert bundle.num_classes == 10
        assert bundle.input_shape == (3, 16, 16)

    def test_blob_classification(self):
        bundle = make_blob_classification(num_classes=3, features=5, train_per_class=10, test_per_class=4, seed=0)
        assert bundle.input_shape == (5,)
        assert len(bundle.train) == 30
        with pytest.raises(ValueError):
            make_blob_classification(num_classes=1)


@settings(max_examples=15, deadline=None)
@given(
    batch_size=st.integers(min_value=1, max_value=16),
    n=st.integers(min_value=1, max_value=40),
)
def test_dataloader_covers_every_sample_property(batch_size, n):
    """Property: iterating a non-dropping loader yields every sample exactly once."""
    ds = TensorDataset(np.arange(n, dtype=np.float32).reshape(n, 1), np.arange(n))
    loader = DataLoader(ds, batch_size=batch_size, shuffle=True, seed=0)
    seen = np.concatenate([y for _, y in loader])
    assert sorted(seen.tolist()) == list(range(n))
