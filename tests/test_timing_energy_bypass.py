"""Tests for the timing model, energy model and the PE-bypass baseline."""

import numpy as np
import pytest

from repro import nn
from repro.accelerator import (
    FaultMap,
    GemmWorkload,
    SystolicArray,
    best_bypass_plan,
    bypass_slowdown,
    bypass_timing,
    column_bypass_plan,
    estimate_model_energy,
    estimate_model_timing,
    gemm_cycles,
    gemm_energy,
    gemm_utilization,
    model_gemm_workloads,
    row_bypass_plan,
)
from repro.accelerator.timing import conv_output_size
from repro.models import MLP, LeNet5


class TestGemmTiming:
    def test_single_tile_cycles(self):
        workload = GemmWorkload("layer", m=100, k=32, n=32)
        cycles = gemm_cycles(workload, 32, 32)
        assert cycles == 32 + (32 + 32 - 2) + 100  # load + pipeline + stream

    def test_multi_tile_scales_with_tiles(self):
        workload = GemmWorkload("layer", m=10, k=64, n=96)
        assert gemm_cycles(workload, 32, 32) == 2 * 3 * (32 + 62 + 10)

    def test_utilization_bounds(self):
        workload = GemmWorkload("layer", m=1000, k=32, n=32)
        utilization = gemm_utilization(workload, 32, 32)
        assert 0.0 < utilization <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            GemmWorkload("bad", m=0, k=1, n=1)
        with pytest.raises(ValueError):
            gemm_cycles(GemmWorkload("x", 1, 1, 1), 0, 4)

    def test_conv_output_size(self):
        assert conv_output_size(32, 3, 1, 1) == 32
        assert conv_output_size(32, 3, 2, 1) == 16
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)


class TestModelWorkloads:
    def test_mlp_workloads(self):
        model = MLP(20, 5, hidden_sizes=(16,), seed=0)
        workloads = model_gemm_workloads(model, (20,), batch_size=4)
        assert len(workloads) == 2
        assert workloads[0].m == 4 and workloads[0].k == 20 and workloads[0].n == 16

    def test_lenet_workloads_track_spatial_sizes(self):
        model = LeNet5(input_shape=(3, 16, 16), num_classes=10, seed=0)
        workloads = model_gemm_workloads(model, (3, 16, 16), batch_size=1)
        # conv1 on 16x16 padded -> 16x16 outputs; conv2 on 8x8 -> 4x4 outputs.
        assert workloads[0].m == 16 * 16
        assert workloads[1].m == 4 * 4
        assert len(workloads) == 2 + 3  # 2 convs + 3 linears

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            model_gemm_workloads(MLP(4, 2, hidden_sizes=(), seed=0), (4,), batch_size=0)


class TestModelTiming:
    def test_totals_are_sums(self):
        model = MLP(64, 10, hidden_sizes=(32,), seed=0)
        timing = estimate_model_timing(model, SystolicArray(32, 32), (64,), batch_size=8)
        assert timing.total_cycles == sum(layer.cycles for layer in timing.layers)
        assert timing.total_macs == 8 * (64 * 32 + 32 * 10)
        assert timing.latency_ms > 0
        assert 0 < timing.utilization <= 1
        assert set(timing.per_layer()) == {layer.name for layer in timing.layers}

    def test_smaller_effective_array_is_slower(self):
        model = MLP(64, 10, hidden_sizes=(64,), seed=0)
        array = SystolicArray(32, 32)
        full = estimate_model_timing(model, array, (64,))
        shrunk = estimate_model_timing(model, array, (64,), effective_rows=16, effective_cols=16)
        assert shrunk.total_cycles > full.total_cycles

    def test_invalid_effective_size(self):
        model = MLP(8, 2, hidden_sizes=(), seed=0)
        with pytest.raises(ValueError):
            estimate_model_timing(model, SystolicArray(8, 8), (8,), effective_rows=0)


class TestEnergy:
    def test_components_positive_and_additive(self):
        workload = GemmWorkload("layer", m=64, k=128, n=32)
        array = SystolicArray(32, 32)
        energy = gemm_energy(workload, array.technology, 32, 32)
        assert energy.mac_nj > 0 and energy.sram_nj > 0 and energy.dram_nj > 0
        assert energy.total_nj == pytest.approx(energy.mac_nj + energy.sram_nj + energy.dram_nj)

    def test_zero_weight_fraction_saves_mac_energy(self):
        workload = GemmWorkload("layer", m=64, k=128, n=32)
        tech = SystolicArray(32, 32).technology
        dense = gemm_energy(workload, tech, 32, 32, zero_weight_fraction=0.0)
        pruned = gemm_energy(workload, tech, 32, 32, zero_weight_fraction=0.5)
        assert pruned.mac_nj == pytest.approx(0.5 * dense.mac_nj)
        assert pruned.sram_nj == dense.sram_nj
        with pytest.raises(ValueError):
            gemm_energy(workload, tech, 32, 32, zero_weight_fraction=1.5)

    def test_model_energy(self):
        model = MLP(64, 10, hidden_sizes=(32,), seed=0)
        energy = estimate_model_energy(model, SystolicArray(32, 32), (64,), batch_size=2)
        assert energy.total_nj > 0
        assert energy.total_mj == pytest.approx(energy.total_nj * 1e-6)
        assert len(energy.per_layer()) == 2


class TestBypass:
    def test_plans_count_hit_rows_and_columns(self):
        fault_map = FaultMap.from_indices(8, 8, [(0, 0), (0, 3), (5, 3)])
        column_plan = column_bypass_plan(fault_map)
        row_plan = row_bypass_plan(fault_map)
        assert column_plan.effective_cols == 6  # columns 0 and 3 bypassed
        assert row_plan.effective_rows == 6  # rows 0 and 5 bypassed
        assert best_bypass_plan(fault_map).surviving_pe_fraction == pytest.approx(0.75)

    def test_infeasible_when_everything_hit(self):
        fault_map = FaultMap.from_array(np.eye(4, dtype=bool))
        with pytest.raises(ValueError):
            column_bypass_plan(fault_map)
        with pytest.raises(ValueError):
            best_bypass_plan(fault_map)

    def test_bypass_slowdown_at_least_one(self):
        model = MLP(64, 10, hidden_sizes=(64,), seed=0)
        fault_map = FaultMap.random(32, 32, 0.05, seed=0)
        array = SystolicArray(32, 32, fault_map=fault_map)
        slowdown = bypass_slowdown(model, array, (64,))
        assert slowdown >= 1.0

    def test_fap_keeps_full_throughput_unlike_bypass(self):
        """The motivation of FAP (paper §I): no performance penalty, unlike bypass."""
        model = MLP(64, 10, hidden_sizes=(64,), seed=0)
        fault_map = FaultMap.random(32, 32, 0.1, seed=1)
        array = SystolicArray(32, 32, fault_map=fault_map)
        fap_timing = estimate_model_timing(model, array, (64,))  # FAP: full array
        _, bypass_t = bypass_timing(model, array, (64,), plan="best")
        assert fap_timing.total_cycles < bypass_t.total_cycles

    def test_unknown_plan(self):
        model = MLP(8, 2, hidden_sizes=(), seed=0)
        array = SystolicArray(8, 8, fault_map=FaultMap.random(8, 8, 0.1, seed=0))
        with pytest.raises(ValueError):
            bypass_timing(model, array, (8,), plan="teleport")
