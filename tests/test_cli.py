"""Tests for the command-line interface."""

import json

import pytest

from repro.backends import BACKEND_ENV_VAR
from repro.cli import main


class TestCli:
    def test_info_command(self, capsys):
        assert main(["info", "--preset", "smoke"]) == 0
        output = capsys.readouterr().out
        assert "preset: smoke" in output
        assert "array" in output

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig3", "--preset", "galactic"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig9"])

    def test_fig2a_runs_and_writes_json(self, capsys, tmp_path):
        output_path = tmp_path / "fig2a.json"
        assert main(["fig2a", "--preset", "smoke", "--output", str(output_path)]) == 0
        stdout = capsys.readouterr().out
        assert "Fig. 2a" in stdout
        payload = json.loads(output_path.read_text())
        assert payload["figure"] == "2a"
        assert len(payload["rows"]) > 0

    def test_fig3_runs_with_chip_override(self, capsys):
        assert main(["fig3", "--preset", "smoke", "--chips", "2"]) == 0
        stdout = capsys.readouterr().out
        assert "reduce-max" in stdout
        assert "Pareto" in stdout


class TestBackendCli:
    def test_unknown_backend_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--preset", "smoke", "--backend", "bogus"])
        assert excinfo.value.code == 2
        assert "unknown --backend 'bogus'" in capsys.readouterr().err

    def test_fused_without_numba_rejected_with_guidance(self, capsys, monkeypatch):
        monkeypatch.setattr("repro.cli.numba_available", lambda: False)
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--preset", "smoke", "--backend", "fused"])
        assert excinfo.value.code == 2
        message = capsys.readouterr().err
        assert "requires numba" in message
        assert "--backend numpy" in message

    def test_env_var_backend_is_validated(self, capsys, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "bogus")
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--preset", "smoke"])
        assert excinfo.value.code == 2
        assert "unknown --backend 'bogus'" in capsys.readouterr().err

    def test_campaign_reports_resolved_backend(self, capsys, tmp_path):
        assert (
            main(
                [
                    "campaign",
                    "--preset",
                    "smoke",
                    "--chips",
                    "2",
                    "--policy",
                    "fixed",
                    "--fixed-epochs",
                    "0.25",
                    "--campaign-dir",
                    str(tmp_path / "campaigns"),
                    "--backend",
                    "numpy",
                ]
            )
            == 0
        )
        assert "compute backend: numpy" in capsys.readouterr().out
