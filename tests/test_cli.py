"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_info_command(self, capsys):
        assert main(["info", "--preset", "smoke"]) == 0
        output = capsys.readouterr().out
        assert "preset: smoke" in output
        assert "array" in output

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig3", "--preset", "galactic"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig9"])

    def test_fig2a_runs_and_writes_json(self, capsys, tmp_path):
        output_path = tmp_path / "fig2a.json"
        assert main(["fig2a", "--preset", "smoke", "--output", str(output_path)]) == 0
        stdout = capsys.readouterr().out
        assert "Fig. 2a" in stdout
        payload = json.loads(output_path.read_text())
        assert payload["figure"] == "2a"
        assert len(payload["rows"]) > 0

    def test_fig3_runs_with_chip_override(self, capsys):
        assert main(["fig3", "--preset", "smoke", "--chips", "2"]) == 0
        stdout = capsys.readouterr().out
        assert "reduce-max" in stdout
        assert "Pareto" in stdout
