"""Tests for the observability layer: span tracer, metrics, trace summaries."""

from __future__ import annotations

import json
import logging
import tracemalloc

import pytest

import repro.campaign.engine as engine_module
from repro.campaign import CampaignEngine
from repro.cli import main
from repro.core.chips import ChipPopulation
from repro.core.selection import FixedEpochPolicy
from repro.observability import (
    CHROME_TRACE_NAME,
    MetricsRegistry,
    load_trace,
    merge_metric_shards,
    merge_shards,
    metrics,
    read_shard,
    render_trace_summary,
    split_key,
    summarize_trace,
    to_chrome_trace,
    trace,
    write_chrome_trace,
)
from repro.observability.summary import PHASE_SPANS
from repro.observability.tracer import _DISABLED_SPAN
from repro.utils.logging import get_logger


@pytest.fixture(autouse=True)
def _reset_observability():
    """Every test leaves the process-wide singletons disabled and empty."""
    yield
    trace.disable()
    metrics.enabled = False
    metrics.reset()


@pytest.fixture(scope="module")
def population(smoke_context):
    preset = smoke_context.preset
    return ChipPopulation.generate(
        count=4,
        rows=preset.array_rows,
        cols=preset.array_cols,
        fault_rates=(0.05, 0.25),
        seed=321,
    )


class TestTracer:
    def test_disabled_span_is_shared_noop_singleton(self):
        assert trace.span("a") is _DISABLED_SPAN
        assert trace.span("a") is trace.span("b", chips=4)
        with trace.span("anything") as span:
            span.set(more="attrs")
        assert trace.shard_path() is None

    def test_disabled_span_path_allocates_nothing(self):
        tracemalloc.start()
        for _ in range(100):  # warm caches (bytecode, tracemalloc internals)
            with trace.span("warm"):
                pass
        trace.instant("warm")
        baseline, _ = tracemalloc.get_traced_memory()
        for _ in range(5000):
            with trace.span("hot.path", chips=8):
                pass
            trace.instant("hot.instant", chip_id="c0")
        current, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # Transient kwargs dicts are freed; nothing is retained per span.
        assert current - baseline < 4096

    def test_enabled_spans_record_to_host_pid_shard(self, tmp_path):
        import os

        from repro.utils.hostinfo import host_tag

        trace.enable(tmp_path)
        with trace.span("campaign.triage", chips=3):
            pass
        trace.instant("campaign.chip", chip_id="chip-0")
        shard = trace.shard_path()
        # Shards are host-qualified so cross-host collection never collides.
        assert shard is not None
        assert shard.name == f"trace-{host_tag()}-{os.getpid()}.jsonl"
        events = read_shard(shard)
        assert [e["name"] for e in events] == ["campaign.triage", "campaign.chip"]
        span_event, instant_event = events
        assert span_event["attrs"] == {"chips": 3}
        assert span_event["duration"] >= 0.0
        assert span_event["pid"] == os.getpid()
        assert span_event["host"] == host_tag()
        assert "duration" not in instant_event

    def test_span_set_updates_attrs(self, tmp_path):
        trace.enable(tmp_path)
        with trace.span("campaign.run", jobs=2) as span:
            span.set(chips=7)
        (event,) = read_shard(trace.shard_path())
        assert event["attrs"] == {"jobs": 2, "chips": 7}

    def test_span_recorded_even_when_body_raises(self, tmp_path):
        trace.enable(tmp_path)
        with pytest.raises(RuntimeError):
            with trace.span("campaign.execute"):
                raise RuntimeError("boom")
        assert [e["name"] for e in read_shard(trace.shard_path())] == ["campaign.execute"]

    def test_torn_shard_lines_are_skipped(self, tmp_path):
        trace.enable(tmp_path)
        with trace.span("ok"):
            pass
        trace.disable()
        shard = next(tmp_path.glob("trace-*.jsonl"))
        with shard.open("a", encoding="utf-8") as handle:
            handle.write('{"name": "torn", "sta')  # simulated mid-write kill
        events = read_shard(shard)
        assert [e["name"] for e in events] == ["ok"]

    def test_merge_shards_sorts_by_start(self, tmp_path):
        (tmp_path / "trace-1.jsonl").write_text(
            '{"name": "b", "start": 2.0, "pid": 1, "duration": 0.5}\n'
        )
        (tmp_path / "trace-2.jsonl").write_text(
            '{"name": "a", "start": 1.0, "pid": 2, "duration": 0.25}\n'
        )
        events = merge_shards(tmp_path)
        assert [e["name"] for e in events] == ["a", "b"]

    def test_chrome_trace_export(self, tmp_path):
        trace.enable(tmp_path)
        with trace.span("campaign.run", chips=2):
            with trace.span("campaign.execute"):
                pass
        trace.instant("campaign.chip", chip_id="c1")
        output = write_chrome_trace(tmp_path)
        assert output == tmp_path / CHROME_TRACE_NAME
        document = json.loads(output.read_text())
        assert document["displayTimeUnit"] == "ms"
        entries = {e["name"]: e for e in document["traceEvents"]}
        from repro.utils.hostinfo import host_tag

        assert entries["campaign.run"]["ph"] == "X"
        assert entries["campaign.run"]["cat"] == "campaign"
        # The host rides in args because chrome pids must stay integers.
        assert entries["campaign.run"]["args"] == {"chips": 2, "host": host_tag()}
        assert entries["campaign.chip"]["ph"] == "i"
        # Timestamps are microseconds relative to the earliest event.
        assert min(e["ts"] for e in document["traceEvents"]) == 0.0
        assert entries["campaign.run"]["dur"] >= entries["campaign.execute"]["dur"]
        # Re-merging is idempotent.
        assert json.loads(write_chrome_trace(tmp_path).read_text()) == document


class TestMetrics:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("chips").inc()
        registry.counter("chips").inc(2)
        registry.gauge("phase").set("execute")
        for value in (0.1, 0.2, 0.3, 0.4):
            registry.histogram("fsync").observe(value)
        snapshot = registry.snapshot()
        assert snapshot["chips"] == {"type": "counter", "value": 3}
        assert snapshot["phase"]["value"] == "execute"
        histogram = snapshot["fsync"]
        assert histogram["count"] == 4
        assert histogram["min"] == pytest.approx(0.1)
        assert histogram["max"] == pytest.approx(0.4)
        assert histogram["mean"] == pytest.approx(0.25)
        assert 0.1 <= histogram["p50"] <= 0.4

    def test_labels_fold_into_key_and_split_back(self):
        registry = MetricsRegistry()
        registry.counter("chips", strategy="fat", policy="fixed").inc()
        (key,) = registry.snapshot().keys()
        assert key == "chips{policy=fixed,strategy=fat}"
        assert split_key(key) == ("chips", {"policy": "fixed", "strategy": "fat"})
        assert split_key("plain") == ("plain", {})

    def test_timer_noop_when_disabled(self):
        registry = MetricsRegistry()
        with registry.timer("gemm"):
            pass
        assert registry.snapshot() == {}
        registry.enabled = True
        with registry.timer("gemm"):
            pass
        assert registry.snapshot()["gemm"]["count"] == 1

    def test_shard_merge_sums_counters_and_merges_histograms(self, tmp_path):
        first = MetricsRegistry()
        first.counter("chips").inc(2)
        first.gauge("phase").set("triage")
        first.histogram("fsync").observe(0.1)
        first.write_shard(tmp_path).rename(tmp_path / "metrics-111.json")

        second = MetricsRegistry()
        second.counter("chips").inc(3)
        second.gauge("phase").set("execute")  # later write wins
        second.histogram("fsync").observe(0.3)
        second.write_shard(tmp_path).rename(tmp_path / "metrics-222.json")

        merged = merge_metric_shards(tmp_path)
        assert merged["chips"] == {"type": "counter", "value": 5}
        assert merged["phase"]["value"] == "execute"
        assert merged["fsync"]["count"] == 2
        assert merged["fsync"]["min"] == pytest.approx(0.1)
        assert merged["fsync"]["max"] == pytest.approx(0.3)


class TestSummary:
    def _events(self):
        return [
            {"name": "campaign.run", "start": 0.0, "duration": 10.0, "pid": 1},
            {"name": "campaign.resume_scan", "start": 0.0, "duration": 0.5, "pid": 1},
            {"name": "campaign.triage", "start": 0.5, "duration": 1.5, "pid": 1},
            {"name": "campaign.plan", "start": 2.0, "duration": 0.5, "pid": 1},
            {"name": "campaign.execute", "start": 2.5, "duration": 7.0, "pid": 1},
            {
                "name": "campaign.chunk", "start": 2.6, "duration": 6.0, "pid": 2,
                "attrs": {"chips": 3, "strategy": "fat"},
            },
            {
                "name": "campaign.chunk", "start": 2.6, "duration": 3.0, "pid": 3,
                "attrs": {"chips": 1, "strategy": "fap"},
            },
            {"name": "campaign.chip", "start": 9.0, "pid": 1, "attrs": {"chip_id": "c0"}},
        ]

    def test_summarize_attributes_phases_workers_strategies(self):
        summary = summarize_trace(self._events())
        assert summary["total_wall_seconds"] == pytest.approx(10.0)
        assert summary["accounted_percent"] == pytest.approx(95.0)
        phases = {row["phase"]: row for row in summary["phases"]}
        assert phases["execute"]["percent"] == pytest.approx(70.0)
        workers = {row["pid"]: row for row in summary["workers"]}
        assert workers[2]["utilization"] == pytest.approx(6.0 / 7.0)
        assert workers[3]["chips"] == 1
        strategies = {row["strategy"]: row for row in summary["strategies"]}
        assert strategies["fat"]["chips_per_second"] == pytest.approx(0.5)
        assert summary["chips_committed"] == 1

    def test_render_contains_sections_and_bars(self):
        rendered = render_trace_summary(summarize_trace(self._events()))
        assert "Per-phase breakdown" in rendered
        assert "Per-worker utilization" in rendered
        assert "Per-strategy attribution" in rendered
        for phase in PHASE_SPANS:
            assert phase.split(".", 1)[1] in rendered
        assert "#" in rendered

    def test_load_trace_from_dir_shard_and_chrome_json(self, tmp_path):
        trace.enable(tmp_path)
        with trace.span("campaign.run"):
            pass
        trace.disable()
        from_dir = load_trace(tmp_path)
        assert [e["name"] for e in from_dir] == ["campaign.run"]
        shard = next(tmp_path.glob("trace-*.jsonl"))
        assert [e["name"] for e in load_trace(shard)] == ["campaign.run"]
        merged = write_chrome_trace(tmp_path)
        from_chrome = load_trace(merged)
        assert [e["name"] for e in from_chrome] == ["campaign.run"]
        assert from_chrome[0]["duration"] == pytest.approx(
            from_dir[0]["duration"], abs=1e-6
        )
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "missing.json")


class TestCampaignTracing:
    def test_parallel_workers_write_shards_into_merged_trace(
        self, smoke_context, population, tmp_path
    ):
        import os

        trace.enable(tmp_path / "trace")
        metrics.enabled = True
        engine = CampaignEngine(
            smoke_context, jobs=2, fat_batch=1, store_base=tmp_path / "campaigns"
        )
        engine.run(population, FixedEpochPolicy(0.25))
        trace.disable()
        metrics.enabled = False

        events = merge_shards(tmp_path / "trace")
        chunk_spans = [e for e in events if e["name"] == "campaign.chunk"]
        worker_pids = {e["pid"] for e in chunk_spans}
        # Every chunk executed in a pool worker, never in the parent.
        assert worker_pids and os.getpid() not in worker_pids
        assert sum(e["attrs"]["chips"] for e in chunk_spans) == len(population)
        chips = [e["attrs"]["chip_id"] for e in events if e["name"] == "campaign.chip"]
        assert sorted(chips) == sorted(chip.chip_id for chip in population)

        # Phase spans are disjoint and tile the campaign.run wall-clock.
        total = sum(e["duration"] for e in events if e["name"] == "campaign.run")
        phase_total = sum(
            e["duration"] for e in events if e["name"] in PHASE_SPANS
        )
        assert phase_total <= total * 1.05
        assert phase_total >= total * 0.5

        # End-of-run artifacts: merged Chrome trace + merged metrics.
        assert (tmp_path / "trace" / "trace.json").exists()
        merged_metrics = json.loads((tmp_path / "trace" / "metrics.json").read_text())
        assert merged_metrics["campaign.chips_completed{strategy=fat}"]["value"] == len(
            population
        )
        assert merged_metrics["store.appends"]["value"] > 0

    def test_traced_campaign_bit_identical_to_untraced(
        self, smoke_context, population, tmp_path
    ):
        policy = FixedEpochPolicy(0.25)
        plain_engine = CampaignEngine(smoke_context, jobs=1, store_base=tmp_path / "plain")
        plain = plain_engine.run(population, policy)

        trace.enable(tmp_path / "trace")
        metrics.enabled = True
        traced_engine = CampaignEngine(smoke_context, jobs=1, store_base=tmp_path / "traced")
        traced = traced_engine.run(population, policy)
        trace.disable()
        metrics.enabled = False

        assert traced.results == plain.results
        assert traced_engine.last_report.fingerprint == plain_engine.last_report.fingerprint
        plain_lines = (plain_engine.last_report.store_dir / "results.jsonl").read_bytes()
        traced_lines = (traced_engine.last_report.store_dir / "results.jsonl").read_bytes()
        assert plain_lines == traced_lines

    def test_killed_then_resumed_trace_has_no_duplicate_chip_events(
        self, smoke_context, population, tmp_path, monkeypatch
    ):
        policy = FixedEpochPolicy(0.25)
        trace.enable(tmp_path / "trace")
        real_execute = engine_module.execute_job_chunk
        calls = {"count": 0}

        def dying_execute(framework, chunk, fat_batch=8, attempt=0):
            if calls["count"] >= 1:
                raise RuntimeError("simulated kill")
            calls["count"] += 1
            return real_execute(framework, chunk, fat_batch=fat_batch, attempt=attempt)

        monkeypatch.setattr(engine_module, "execute_job_chunk", dying_execute)
        # Inline exceptions no longer crash the campaign: with retries
        # exhausted the failing chunks are quarantined and the run completes
        # with failed_chips (max_chunk_retries=0 skips the backoff sleeps).
        engine = CampaignEngine(
            smoke_context,
            jobs=1,
            fat_batch=1,
            store_base=tmp_path / "campaigns",
            max_chunk_retries=0,
        )
        first = engine.run(population, policy)
        assert len(first.failed_chips) == len(population) - 1
        assert engine.last_report.executed == 1

        monkeypatch.setattr(engine_module, "execute_job_chunk", real_execute)
        resumed_engine = CampaignEngine(
            smoke_context, jobs=1, fat_batch=1, store_base=tmp_path / "campaigns"
        )
        resumed = resumed_engine.run(population, policy)
        trace.disable()

        assert resumed_engine.last_report.skipped == 1
        assert not resumed.failed_chips
        events = merge_shards(tmp_path / "trace")
        chips = [e["attrs"]["chip_id"] for e in events if e["name"] == "campaign.chip"]
        # Chip events are emitted only after the store append: the chip
        # recorded before the kill appears once, resumed chips appear once,
        # and nothing is duplicated across the two runs.
        assert len(chips) == len(set(chips))
        assert sorted(chips) == sorted(chip.chip_id for chip in population)
        assert len(resumed.results) == len(population)

    def test_heartbeat_reports_eta_and_phase(self, smoke_context, population):
        class ListHandler(logging.Handler):
            def __init__(self):
                super().__init__()
                self.messages = []

            def emit(self, record):
                self.messages.append(record.getMessage())

        handler = ListHandler()
        logger = get_logger("campaign.engine")
        previous_level = logger.level
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        try:
            engine = CampaignEngine(
                smoke_context, jobs=1, fat_batch=1, heartbeat_seconds=0.0
            )
            engine.run(population, FixedEpochPolicy(0.25))
        finally:
            logger.removeHandler(handler)
            logger.setLevel(previous_level)
        beats = [m for m in handler.messages if "heartbeat" in m]
        assert len(beats) == len(population) - 1
        assert "chips/s" in beats[0]
        assert "eta" in beats[0]
        assert "phase execute" in beats[0]


class TestObservabilityCli:
    def test_campaign_trace_flag_and_trace_command(self, capsys, tmp_path):
        trace_dir = tmp_path / "trace"
        assert main([
            "campaign",
            "--preset", "smoke",
            "--chips", "2",
            "--policy", "fixed",
            "--fixed-epochs", "0.25",
            "--campaign-dir", str(tmp_path / "campaigns"),
            "--trace", str(trace_dir),
        ]) == 0
        capsys.readouterr()
        assert (trace_dir / "trace.json").exists()
        assert (trace_dir / "metrics.json").exists()

        assert main(["trace", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "Per-phase breakdown" in out
        assert "execute" in out

        # The merged Chrome trace summarizes identically to the shard dir.
        assert main(["trace", str(trace_dir / "trace.json")]) == 0
        assert "Per-phase breakdown" in capsys.readouterr().out

    def test_trace_path_rejected_for_other_commands(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "some/path"])
        assert excinfo.value.code == 2
        assert "trace" in capsys.readouterr().err

    def test_trace_command_on_missing_path_errors(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", str(tmp_path / "nope")])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_trace_command_on_empty_dir_reports_no_events(self, capsys, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["trace", str(empty)]) == 1
        assert "no trace events" in capsys.readouterr().out
