"""Tests for experiment presets, contexts and the figure runners (smoke scale)."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentContext,
    available_presets,
    build_dataset,
    build_population,
    fast_preset,
    get_preset,
    paper_preset,
    run_fig2a,
    run_fig2b,
    run_fig3,
    smoke_preset,
)
from repro.experiments.common import clear_context_cache


class TestPresets:
    def test_available(self):
        assert set(available_presets()) == {"smoke", "fast", "paper"}
        assert get_preset("fast").name == "fast"
        with pytest.raises(KeyError):
            get_preset("galactic")

    def test_presets_are_well_formed(self):
        for factory in (smoke_preset, fast_preset, paper_preset):
            preset = factory()
            assert preset.array_rows > 0 and preset.array_cols > 0
            assert len(preset.fault_rates) >= 2
            assert preset.resilience_config().trials_per_rate >= 1
            assert 0 < preset.constraint_drop < 1
            assert preset.constraint().relative_drop == preset.constraint_drop

    def test_paper_preset_matches_paper_setup(self):
        preset = paper_preset()
        assert preset.array_rows == preset.array_cols == 256  # 256x256 systolic array
        assert preset.trials_per_rate == 5  # five repetitions per point (Fig. 2b)
        assert preset.num_chips == 100  # 100 faulty chips (Fig. 3)
        assert preset.model.name.startswith("vgg11")  # VGG11 evaluation network
        assert preset.dataset.num_classes == 10  # CIFAR-10-like task

    def test_dataset_built_from_spec(self):
        bundle = build_dataset(smoke_preset())
        preset = smoke_preset()
        assert bundle.num_classes == preset.dataset.num_classes
        assert bundle.input_shape[0] == preset.dataset.channels


class TestContext:
    def test_context_caching(self):
        clear_context_cache()
        first = ExperimentContext.from_preset(smoke_preset())
        second = ExperimentContext.from_preset(smoke_preset())
        assert first is second
        uncached = ExperimentContext.from_preset(smoke_preset(), use_cache=False)
        assert uncached is not first

    def test_context_contents(self, smoke_context):
        assert 0.0 < smoke_context.clean_accuracy <= 1.0
        assert smoke_context.target_accuracy() < smoke_context.clean_accuracy
        assert smoke_context.array.shape == (
            smoke_context.preset.array_rows,
            smoke_context.preset.array_cols,
        )
        framework = smoke_context.framework()
        assert framework.clean_accuracy == pytest.approx(smoke_context.clean_accuracy, abs=0.05)

    def test_restore_pretrained(self, smoke_context):
        state_before = {k: v.copy() for k, v in smoke_context.pretrained_state.items()}
        for parameter in smoke_context.model.parameters():
            parameter.data = parameter.data + 1.0
        smoke_context.restore_pretrained()
        for name, value in smoke_context.model.state_dict().items():
            np.testing.assert_allclose(value, state_before[name])

    def test_profile_cached_on_context(self, smoke_context):
        profile = smoke_context.resilience_profile()
        assert smoke_context.resilience_profile() is profile


class TestFig2Runners:
    def test_fig2a_shapes_and_monotonicity(self, smoke_context):
        result = run_fig2a(smoke_context)
        n_rates = len(smoke_context.preset.fig2a_fault_rates)
        n_amounts = len(result.retraining_amounts)
        assert result.mean_accuracy.shape == (n_amounts, n_rates)
        assert result.retraining_amounts[0] == 0.0
        assert np.all(result.min_accuracy <= result.max_accuracy + 1e-9)
        # More retraining never hurts on average at the highest fault rate (weak check).
        assert result.mean_accuracy[-1, 0] >= result.mean_accuracy[0, 0] - 0.1
        assert len(result.rows()) == n_amounts * n_rates
        assert "accuracy" in result.render()
        assert result.curve(0.0).shape == (n_rates,)

    def test_fig2b_shapes(self, smoke_context):
        result = run_fig2b(smoke_context)
        n_targets = len(smoke_context.preset.fig2b_accuracy_drops)
        n_rates = len(smoke_context.preset.fault_rates)
        assert result.mean_epochs.shape == (n_targets, n_rates)
        assert np.all(result.min_epochs <= result.max_epochs + 1e-9)
        assert np.all(result.mean_epochs >= 0)
        # Harder (higher) targets never need fewer epochs than easier ones at any rate.
        assert np.all(result.max_epochs[-1] >= result.max_epochs[0] - 1e-9)
        assert len(result.rows()) == n_targets * n_rates
        assert "epochs" in result.render()

    def test_fig2b_accepts_explicit_profile(self, smoke_context):
        profile = smoke_context.resilience_profile()
        result = run_fig2b(smoke_context, accuracy_drops=(0.05,), profile=profile)
        assert result.profile is profile
        assert result.target_accuracies.shape == (1,)


class TestFig3Runner:
    def test_population_generation(self, smoke_context):
        population = build_population(smoke_context, num_chips=5)
        assert len(population) == 5
        assert population.array_shape == smoke_context.array.shape

    def test_fig3_campaigns_and_summary(self, smoke_context):
        result = run_fig3(smoke_context, num_chips=4)
        expected_policies = {"reduce-max", "reduce-mean"} | {
            f"fixed-{e:g}ep" for e in smoke_context.preset.fixed_policy_epochs
        }
        assert set(result.policy_names) == expected_policies
        assert result.reduce_max.num_chips == 4
        for campaign in result.campaigns.values():
            assert np.all(campaign.accuracies() >= 0) and np.all(campaign.accuracies() <= 1)
            assert np.all(campaign.epochs() >= 0)
        summary_points = result.summary_points()
        assert len(summary_points) == len(expected_policies)
        assert len(result.pareto_policies()) >= 1
        assert isinstance(result.reduce_on_pareto_front(), bool)
        assert "reduce-max" in result.summary_table()
        assert "accuracy" in result.render_scatter()
        payload = result.to_dict()
        assert payload["target_accuracy"] == pytest.approx(result.target_accuracy)
        with pytest.raises(KeyError):
            result.campaign("nonexistent")

    def test_fig3_without_reduce_mean(self, smoke_context):
        result = run_fig3(smoke_context, num_chips=2, include_reduce_mean=False, fixed_epochs=(0.25,))
        assert set(result.policy_names) == {"reduce-max", "fixed-0.25ep"}
        assert result.fixed_campaigns().keys() == {"fixed-0.25ep"}
