"""Integration tests for the Reduce framework (Steps 1-3) and resilience analysis."""

import numpy as np
import pytest

from repro import nn
from repro.accelerator import FaultMap, RandomFaultModel, SystolicArray
from repro.core import (
    AccuracyConstraint,
    CampaignResult,
    ChipPopulation,
    FixedEpochPolicy,
    ReduceConfig,
    ReduceFramework,
    ResilienceAnalyzer,
    ResilienceConfig,
)
from repro.core.reduce import ChipRetrainingResult
from repro.models import MLP
from repro.nn import clone_state_dict
from repro.training import Trainer, TrainingConfig, evaluate_accuracy


@pytest.fixture(scope="module")
def pretrained_setup():
    """A small pre-trained MLP on the image bundle, shared by the module."""
    from repro.data import make_class_template_images

    bundle = make_class_template_images(
        num_classes=4, train_per_class=16, test_per_class=8,
        image_size=8, channels=2, noise_std=0.3, shift_pixels=0, seed=1,
    )
    features = int(np.prod(bundle.input_shape))
    model = MLP(features, bundle.num_classes, hidden_sizes=(32,), seed=3)
    config = TrainingConfig(learning_rate=0.1, batch_size=16, seed=0)
    Trainer(model, bundle.train, bundle.test, config).train(4.0)
    return model, clone_state_dict(model.state_dict()), bundle, config


def resilience_config(training):
    return ResilienceConfig(
        fault_rates=(0.0, 0.2, 0.5),
        epoch_checkpoints=(0.25, 1.0),
        trials_per_rate=2,
        training=training,
        seed=0,
    )


class TestResilienceConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(fault_rates=())
        with pytest.raises(ValueError):
            ResilienceConfig(fault_rates=(0.5, 0.1))
        with pytest.raises(ValueError):
            ResilienceConfig(fault_rates=(0.0, 1.5))
        with pytest.raises(ValueError):
            ResilienceConfig(epoch_checkpoints=(0.0, 1.0))
        with pytest.raises(ValueError):
            ResilienceConfig(epoch_checkpoints=(2.0, 1.0))
        with pytest.raises(ValueError):
            ResilienceConfig(trials_per_rate=0)
        assert ResilienceConfig().max_epochs == 2.0


class TestResilienceAnalyzer:
    def test_profile_shape_and_contents(self, pretrained_setup):
        model, state, bundle, training = pretrained_setup
        analyzer = ResilienceAnalyzer(
            model, state, bundle, SystolicArray(16, 16), resilience_config(training)
        )
        profile = analyzer.run()
        assert profile.accuracies.shape == (3, 2, 3)  # rates x trials x (0 + checkpoints)
        assert profile.clean_accuracy > 0.5
        # Zero fault rate rows are the clean accuracy.
        np.testing.assert_allclose(profile.accuracies[0], profile.clean_accuracy)
        # Accuracy at a given rate should not decrease (on average) with retraining.
        surface = profile.accuracy_surface("mean")
        assert surface[1, -1] >= surface[1, 0] - 0.05
        assert profile.metadata["fault_model"] == "random"

    def test_model_restored_after_analysis(self, pretrained_setup):
        model, state, bundle, training = pretrained_setup
        analyzer = ResilienceAnalyzer(
            model, state, bundle, SystolicArray(16, 16), resilience_config(training)
        )
        analyzer.run()
        for name, value in model.state_dict().items():
            np.testing.assert_allclose(value, state[name])


class TestReduceFramework:
    @pytest.fixture()
    def framework(self, pretrained_setup):
        model, state, bundle, training = pretrained_setup
        config = ReduceConfig(
            constraint=AccuracyConstraint.within_drop_of_clean(0.05),
            resilience=resilience_config(training),
            retraining=training,
        )
        return ReduceFramework(model, state, bundle, SystolicArray(16, 16), config=config)

    def test_clean_accuracy_and_target(self, framework):
        assert 0.5 < framework.clean_accuracy <= 1.0
        assert framework.target_accuracy == pytest.approx(framework.clean_accuracy - 0.05)

    def test_profile_cached(self, framework):
        first = framework.analyze_resilience()
        second = framework.analyze_resilience()
        assert first is second
        third = framework.analyze_resilience(force=True)
        assert third is not first

    def test_selection_scales_with_fault_rate(self, framework):
        population = ChipPopulation.generate(
            4, 16, 16, fault_rates=[0.0, 0.1, 0.3, 0.5], seed=0
        )
        amounts = framework.select_retraining_amounts(population)
        rates = [chip.fault_rate for chip in population]
        ordered = [amounts[chip.chip_id] for chip in population]
        assert ordered == sorted(ordered)
        assert ordered[0] == 0.0
        assert len(amounts) == 4

    def test_retrain_chip_returns_state(self, framework):
        population = ChipPopulation.generate(1, 16, 16, fault_rates=0.3, seed=1)
        result, state = framework.retrain_chip(population[0], epochs=0.25, return_state=True)
        assert isinstance(result, ChipRetrainingResult)
        assert result.epochs_trained == pytest.approx(0.25)
        assert 0.0 < result.masked_weight_fraction < 1.0
        assert isinstance(state, dict) and "body.0.weight" in state
        with pytest.raises(ValueError):
            framework.retrain_chip(population[0], epochs=-1)

    def test_zero_epoch_chip_is_fap_only(self, framework):
        population = ChipPopulation.generate(1, 16, 16, fault_rates=0.2, seed=2)
        result = framework.retrain_chip(population[0], epochs=0.0)
        assert result.epochs_trained == 0.0
        assert result.accuracy_after == pytest.approx(result.accuracy_before)

    def test_run_and_fixed_policy_campaigns(self, framework):
        population = ChipPopulation.generate(
            4, 16, 16, fault_rates=(0.0, 0.4), seed=3
        )
        reduce_campaign = framework.run(population, statistic="max")
        fixed_campaign = framework.run_fixed_policy(population, epochs=0.25)
        assert reduce_campaign.num_chips == fixed_campaign.num_chips == 4
        assert reduce_campaign.policy_name == "reduce-max"
        assert fixed_campaign.policy_name == "fixed-0.25ep"
        assert 0.0 <= reduce_campaign.fraction_meeting_constraint <= 1.0
        assert fixed_campaign.average_epochs == pytest.approx(0.25)
        # Reduce must satisfy at least as many chips as the equal-effort check below.
        summary = reduce_campaign.summary()
        assert set(summary) >= {"policy", "average_epochs", "percent_meeting_constraint"}

    def test_campaign_result_views(self, framework):
        population = ChipPopulation.generate(3, 16, 16, fault_rates=0.2, seed=4)
        campaign = framework.run_fixed_policy(population, epochs=0.25)
        assert campaign.epochs().shape == (3,)
        assert campaign.accuracies().shape == (3,)
        assert campaign.fault_rates().shape == (3,)
        assert len(campaign.scatter_points()) == 3
        assert campaign.total_epochs == pytest.approx(0.75)
        assert campaign.worst_accuracy <= campaign.mean_accuracy
        payload = campaign.to_dict()
        assert payload["policy_name"] == "fixed-0.25ep"
        assert len(payload["chips"]) == 3

    def test_campaign_requires_results(self):
        with pytest.raises(ValueError):
            CampaignResult(policy_name="x", target_accuracy=0.9, clean_accuracy=0.95, results=[])

    def test_injected_profile_is_used(self, framework, pretrained_setup):
        profile = framework.analyze_resilience()
        model, state, bundle, training = pretrained_setup
        fresh = ReduceFramework(
            model, state, bundle, SystolicArray(16, 16),
            config=ReduceConfig(
                constraint=AccuracyConstraint.within_drop_of_clean(0.05),
                resilience=resilience_config(training),
            ),
        )
        fresh.set_profile(profile)
        assert fresh.analyze_resilience() is profile
