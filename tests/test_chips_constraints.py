"""Tests for Chip / ChipPopulation and accuracy constraints."""

import numpy as np
import pytest

from repro.accelerator import ColumnFaultModel, FaultMap
from repro.core import AccuracyConstraint, Chip, ChipPopulation


class TestChip:
    def test_properties(self):
        fault_map = FaultMap.random(16, 16, 0.2, seed=0)
        chip = Chip("chip-001", fault_map)
        assert chip.fault_rate == pytest.approx(fault_map.fault_rate)
        assert chip.num_faulty_pes == fault_map.num_faulty
        array = chip.array()
        assert array.shape == (16, 16)
        assert array.fault_map == fault_map

    def test_serialization(self):
        chip = Chip("c1", FaultMap.random(8, 8, 0.3, seed=1))
        restored = Chip.from_dict(chip.to_dict())
        assert restored.chip_id == "c1"
        assert restored.fault_map == chip.fault_map


class TestChipPopulation:
    def test_generate_range(self):
        population = ChipPopulation.generate(10, 16, 16, fault_rates=(0.05, 0.3), seed=0)
        assert len(population) == 10
        rates = population.fault_rates()
        assert np.all(rates >= 0.0) and np.all(rates <= 0.31)
        assert population.array_shape == (16, 16)
        assert len({chip.chip_id for chip in population}) == 10

    def test_generate_fixed_rate(self):
        population = ChipPopulation.generate(5, 16, 16, fault_rates=0.25, seed=0)
        np.testing.assert_allclose(population.fault_rates(), np.full(5, 0.25), atol=0.01)

    def test_generate_explicit_rates(self):
        rates = [0.0, 0.1, 0.2]
        population = ChipPopulation.generate(3, 8, 8, fault_rates=rates, seed=0)
        np.testing.assert_allclose(population.fault_rates(), rates, atol=0.02)

    def test_generate_with_custom_fault_model(self):
        population = ChipPopulation.generate(
            4, 8, 8, fault_rates=0.25, fault_model=ColumnFaultModel(), seed=0
        )
        for chip in population:
            assert len(chip.fault_map.columns_with_faults()) == 2

    def test_generation_is_deterministic(self):
        a = ChipPopulation.generate(6, 8, 8, seed=3)
        b = ChipPopulation.generate(6, 8, 8, seed=3)
        assert all(x.fault_map == y.fault_map for x, y in zip(a, b))

    def test_validation(self):
        with pytest.raises(ValueError):
            ChipPopulation.generate(0, 8, 8)
        with pytest.raises(ValueError):
            ChipPopulation.generate(3, 8, 8, fault_rates=(0.5, 0.2))
        with pytest.raises(ValueError):
            ChipPopulation.generate(3, 8, 8, fault_rates=[0.1, 0.2])  # wrong length
        with pytest.raises(ValueError):
            ChipPopulation([])

    def test_duplicate_ids_rejected(self):
        chip = Chip("dup", FaultMap.none(4, 4))
        with pytest.raises(ValueError):
            ChipPopulation([chip, Chip("dup", FaultMap.none(4, 4))])

    def test_mixed_shapes_rejected(self):
        with pytest.raises(ValueError):
            ChipPopulation([Chip("a", FaultMap.none(4, 4)), Chip("b", FaultMap.none(8, 8))])

    def test_container_protocol_and_summary(self):
        population = ChipPopulation.generate(5, 8, 8, seed=0)
        assert population[0].chip_id.startswith("chip-")
        assert len(list(iter(population))) == 5
        summary = population.fault_rate_summary()
        assert set(summary) == {"min", "max", "mean", "median"}
        assert "ChipPopulation" in repr(population)

    def test_serialization_round_trip(self):
        population = ChipPopulation.generate(4, 8, 8, seed=1)
        restored = ChipPopulation.from_dict(population.to_dict())
        assert len(restored) == 4
        assert all(x.fault_map == y.fault_map for x, y in zip(population, restored))


class TestAccuracyConstraint:
    def test_absolute(self):
        constraint = AccuracyConstraint.at_least(0.91)
        assert constraint.resolve() == pytest.approx(0.91)
        assert constraint.is_met(0.915)
        assert not constraint.is_met(0.90)
        assert "91" in constraint.describe()

    def test_relative(self):
        constraint = AccuracyConstraint.within_drop_of_clean(0.02)
        assert constraint.resolve(clean_accuracy=0.95) == pytest.approx(0.93)
        assert constraint.is_met(0.935, clean_accuracy=0.95)
        assert not constraint.is_met(0.92, clean_accuracy=0.95)
        with pytest.raises(ValueError):
            constraint.resolve()

    def test_relative_never_negative(self):
        constraint = AccuracyConstraint.within_drop_of_clean(0.5)
        assert constraint.resolve(clean_accuracy=0.3) == 0.0

    def test_describe_variants(self):
        relative = AccuracyConstraint.within_drop_of_clean(0.02)
        assert "clean" in relative.describe()
        assert "%" in relative.describe(clean_accuracy=0.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            AccuracyConstraint()
        with pytest.raises(ValueError):
            AccuracyConstraint(absolute=0.9, relative_drop=0.1)
        with pytest.raises(ValueError):
            AccuracyConstraint(absolute=1.5)
        with pytest.raises(ValueError):
            AccuracyConstraint(relative_drop=-0.1)

    def test_serialization(self):
        constraint = AccuracyConstraint.at_least(0.9)
        restored = AccuracyConstraint.from_dict(constraint.to_dict())
        assert restored == constraint
