"""Tests for the functional faulty-array simulation (FAP/hardware equivalence)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.accelerator import FaultMap, SystolicArray, layer_fault_mask
from repro.accelerator.simulation import (
    model_masks_match_hardware,
    simulate_gemm_on_array,
    simulate_linear_layer,
)
from repro.mitigation import apply_fap
from repro.models import MLP

RNG = np.random.default_rng(0)


class TestGemmSimulation:
    def test_fault_free_matches_plain_matmul(self):
        activations = RNG.standard_normal((5, 12))
        weights = RNG.standard_normal((7, 12))
        result = simulate_gemm_on_array(activations, weights, FaultMap.none(4, 4))
        np.testing.assert_allclose(result, activations @ weights.T, rtol=1e-6)

    def test_fully_faulty_array_outputs_zero(self):
        activations = RNG.standard_normal((3, 8))
        weights = RNG.standard_normal((6, 8))
        all_faulty = FaultMap.from_array(np.ones((4, 4), dtype=bool))
        result = simulate_gemm_on_array(activations, weights, all_faulty)
        np.testing.assert_allclose(result, np.zeros((3, 6)))

    def test_single_faulty_pe_removes_expected_contributions(self):
        activations = np.ones((1, 4))
        weights = np.ones((4, 4))
        fault_map = FaultMap.from_indices(4, 4, [(1, 2)])  # reduce index 1, output 2
        result = simulate_gemm_on_array(activations, weights, fault_map)
        expected = np.full((1, 4), 4.0)
        expected[0, 2] = 3.0  # one contribution bypassed for output 2
        np.testing.assert_allclose(result, expected)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            simulate_gemm_on_array(np.ones((2, 3)), np.ones((4, 5)), FaultMap.none(2, 2))
        with pytest.raises(ValueError):
            simulate_gemm_on_array(np.ones(3), np.ones((4, 3)), FaultMap.none(2, 2))


class TestLayerEquivalence:
    def test_linear_layer_simulation_includes_bias(self):
        layer = nn.Linear(10, 6, rng=0)
        inputs = RNG.standard_normal((4, 10)).astype(np.float32)
        fault_map = FaultMap.random(8, 8, 0.3, seed=1)
        hardware = simulate_linear_layer(layer, inputs, fault_map)
        mask = layer_fault_mask(layer, fault_map)
        masked = np.where(mask, 0.0, layer.weight.data)
        expected = inputs @ masked.T + layer.bias.data
        np.testing.assert_allclose(hardware, expected, rtol=1e-5, atol=1e-6)

    def test_fap_masked_model_equals_hardware_execution(self):
        """Applying FAP in software is exactly running the model on the faulty chip."""
        model = MLP(16, 4, hidden_sizes=(12,), seed=0)
        fault_map = FaultMap.random(8, 8, 0.25, seed=2)
        inputs = RNG.standard_normal((5, 16)).astype(np.float32)

        # Hardware view: simulate each layer on the faulty array, layer by layer.
        hidden_hw = simulate_linear_layer(model.body[0], inputs, fault_map)
        hidden_hw = np.maximum(hidden_hw, 0.0)
        logits_hw = simulate_linear_layer(model.body[2], hidden_hw, fault_map)

        # Software view: zero the masked weights and run the model normally.
        apply_fap(model, fault_map)
        logits_sw = model(nn.Tensor(inputs)).data

        np.testing.assert_allclose(logits_hw, logits_sw, rtol=1e-4, atol=1e-5)

    def test_model_masks_match_hardware_helper(self):
        model = MLP(16, 4, hidden_sizes=(12,), seed=1)
        inputs = RNG.standard_normal((3, 16)).astype(np.float32)
        fault_map = FaultMap.random(8, 8, 0.4, seed=3)
        assert model_masks_match_hardware(model, fault_map, inputs)
        assert model_masks_match_hardware(model, SystolicArray(8, 8, fault_map=fault_map), inputs)


@settings(max_examples=20, deadline=None)
@given(
    rate=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_simulated_output_never_exceeds_dense_contribution(rate, seed):
    """Property: on all-ones inputs/weights, bypassing PEs can only shrink outputs."""
    activations = np.ones((2, 12))
    weights = np.ones((6, 12))
    fault_map = FaultMap.random(6, 6, rate, seed=seed)
    result = simulate_gemm_on_array(activations, weights, fault_map)
    dense = activations @ weights.T
    assert np.all(result <= dense + 1e-9)
    assert np.all(result >= 0.0)
