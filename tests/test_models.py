"""Tests for the model zoo (MLP, LeNet-5, VGG) and the registry."""

import numpy as np
import pytest

from repro import nn
from repro.models import (
    MLP,
    LeNet5,
    VGG,
    VGG_CONFIGS,
    available_models,
    build_model,
    register_model,
    vgg11,
    vgg11_mini,
)

RNG = np.random.default_rng(0)


def _batch(shape, n=2):
    return nn.Tensor(RNG.standard_normal((n,) + tuple(shape)).astype(np.float32))


class TestMLP:
    def test_forward_shape(self):
        model = MLP(20, 5, hidden_sizes=(16, 8), seed=0)
        assert model(_batch((20,), n=3)).shape == (3, 5)

    def test_flattens_images(self):
        model = MLP(2 * 4 * 4, 3, hidden_sizes=(8,), seed=0)
        assert model(_batch((2, 4, 4))).shape == (2, 3)

    def test_dropout_layers_added(self):
        model = MLP(10, 2, hidden_sizes=(8,), dropout=0.5, seed=0)
        assert any(isinstance(m, nn.Dropout) for m in model.modules())

    def test_validation(self):
        with pytest.raises(ValueError):
            MLP(0, 3)
        with pytest.raises(ValueError):
            MLP(4, 1)
        with pytest.raises(ValueError):
            MLP(4, 3, hidden_sizes=(0,))

    def test_deterministic_by_seed(self):
        a = MLP(6, 3, hidden_sizes=(4,), seed=9)
        b = MLP(6, 3, hidden_sizes=(4,), seed=9)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data)


class TestLeNet5:
    def test_forward_shape(self):
        model = LeNet5(input_shape=(3, 16, 16), num_classes=7, seed=0)
        assert model(_batch((3, 16, 16))).shape == (2, 7)

    def test_works_on_minimum_size(self):
        model = LeNet5(input_shape=(1, 12, 12), num_classes=4, seed=0)
        assert model(_batch((1, 12, 12))).shape == (2, 4)

    def test_too_small_input_raises(self):
        with pytest.raises(ValueError):
            LeNet5(input_shape=(1, 8, 8))
        with pytest.raises(ValueError):
            LeNet5(input_shape=(8, 8))


class TestVGG:
    def test_vgg11_layer_plan(self):
        model = vgg11(input_shape=(3, 32, 32), num_classes=10, width_multiplier=0.125, seed=0)
        conv_layers = [m for m in model.modules() if isinstance(m, nn.Conv2d)]
        pool_layers = [m for m in model.modules() if isinstance(m, nn.MaxPool2d)]
        assert len(conv_layers) == 8  # VGG11 has 8 conv layers
        assert len(pool_layers) == 5
        assert model(_batch((3, 32, 32))).shape == (2, 10)

    def test_width_multiplier_scales_channels(self):
        narrow = vgg11(input_shape=(3, 32, 32), width_multiplier=0.125, seed=0)
        wide = vgg11(input_shape=(3, 32, 32), width_multiplier=0.25, seed=0)
        assert wide.num_parameters() > narrow.num_parameters()

    def test_small_input_skips_pools(self):
        model = vgg11(input_shape=(3, 8, 8), num_classes=10, width_multiplier=0.125, seed=0)
        assert model.skipped_pools >= 2
        assert model(_batch((3, 8, 8))).shape == (2, 10)
        assert model.final_spatial >= 1

    def test_batch_norm_toggle(self):
        with_bn = vgg11(input_shape=(3, 16, 16), width_multiplier=0.125, batch_norm=True, seed=0)
        without_bn = vgg11(input_shape=(3, 16, 16), width_multiplier=0.125, batch_norm=False, seed=0)
        assert any(isinstance(m, nn.BatchNorm2d) for m in with_bn.modules())
        assert not any(isinstance(m, nn.BatchNorm2d) for m in without_bn.modules())

    def test_vgg11_mini_named(self):
        model = vgg11_mini(input_shape=(3, 16, 16), seed=0)
        assert model.name == "vgg11_mini"
        assert model(_batch((3, 16, 16))).shape == (2, 10)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            VGG(VGG_CONFIGS["vgg11"], input_shape=(3, 32), num_classes=10)
        with pytest.raises(ValueError):
            VGG(VGG_CONFIGS["vgg11"], width_multiplier=0.0)

    def test_vgg13_and_vgg16_have_more_convs(self):
        def conv_count(name):
            model = build_model(name, (3, 32, 32), 10, width_multiplier=0.0625)
            return sum(1 for m in model.modules() if isinstance(m, nn.Conv2d))

        assert conv_count("vgg11") == 8
        assert conv_count("vgg13") == 10
        assert conv_count("vgg16") == 13


class TestRegistry:
    def test_available_models(self):
        names = available_models()
        for expected in ("mlp", "lenet5", "vgg11", "vgg11_mini", "vgg13", "vgg16"):
            assert expected in names

    def test_build_by_name(self):
        model = build_model("mlp", (3, 8, 8), 5, seed=0, hidden_sizes=(16,))
        assert model(_batch((3, 8, 8))).shape == (2, 5)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_model("resnet900", (3, 8, 8), 5)

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError):
            register_model("mlp", lambda **kwargs: None)

    def test_register_custom_model(self):
        @register_model("tiny-linear-test")
        def _build(input_shape, num_classes, seed=0):
            features = int(np.prod(input_shape))
            return nn.Linear(features, num_classes, rng=seed)

        model = build_model("tiny-linear-test", (4,), 2)
        assert model(_batch((4,))).shape == (2, 2)
