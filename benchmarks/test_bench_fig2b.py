"""Benchmark regenerating Fig. 2b: retraining epochs required vs fault rate.

Paper reference: the number of epochs needed to reach a target accuracy grows
with the fault rate and with the target; the min/max error bars over the five
fault-map trials show that using the mean would under-train some chips, which
is why Reduce uses the maximum.
"""

import numpy as np

from repro.experiments import run_fig2b

from bench_utils import run_once


def test_fig2b_epochs_required_vs_fault_rate(benchmark, fast_context, fast_profile):
    result = run_once(benchmark, run_fig2b, fast_context, profile=fast_profile)

    max_epochs = result.max_epochs
    mean_epochs = result.mean_epochs
    min_epochs = result.min_epochs

    # Shape check 1: requirements are ordered min <= mean <= max everywhere.
    assert np.all(min_epochs <= mean_epochs + 1e-9)
    assert np.all(mean_epochs <= max_epochs + 1e-9)

    # Shape check 2: the retraining requirement grows with the fault rate —
    # the highest analysed rate needs at least as much as the lowest, for the
    # hardest target.
    assert max_epochs[-1, -1] >= max_epochs[-1, 0]
    # and is non-trivial (some retraining is actually needed at high rates).
    assert max_epochs[-1, -1] > 0

    # Shape check 3: harder targets never require fewer epochs than easier ones.
    for rate_index in range(max_epochs.shape[1]):
        column = max_epochs[:, rate_index]
        assert np.all(np.diff(column) >= -1e-9)

    print(f"\nFig. 2b analogue (targets resolved against clean accuracy "
          f"{result.clean_accuracy:.3f}):")
    print(result.render())
    for row in result.rows():
        print(
            f"  target={row['target_accuracy']:.3f} rate={row['fault_rate']:.2f} "
            f"epochs: mean={row['mean_epochs']:.2f} min={row['min_epochs']:.2f} max={row['max_epochs']:.2f}"
        )
