"""Helpers shared by the benchmark harness modules."""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Execute ``func`` exactly once under pytest-benchmark timing.

    The figure-level benchmarks each wrap tens of retraining runs, so a single
    timed execution is both sufficient and necessary to keep the harness fast.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
