"""Benchmark regenerating Fig. 2a: accuracy vs fault rate at fixed retraining amounts.

Paper reference (VGG11 / CIFAR-10, 256x256 array): without retraining the
accuracy collapses as the fault rate grows; tiny amounts of retraining
(0.05 epochs) recover most of the loss at low fault rates, and larger amounts
(5-10 epochs) keep the model usable up to high fault rates.  The benchmark
asserts that qualitative shape and prints the regenerated curves.
"""

import numpy as np

from repro.experiments import run_fig2a

from bench_utils import run_once


def test_fig2a_accuracy_vs_fault_rate(benchmark, fast_context):
    result = run_once(benchmark, run_fig2a, fast_context)

    rates = result.fault_rates
    no_retraining = result.curve(0.0)
    most_retraining = result.mean_accuracy[-1]

    # Shape check 1: without retraining, accuracy at the highest fault rate is
    # far below the clean accuracy (faults hurt).
    assert no_retraining[-1] < result.clean_accuracy - 0.2

    # Shape check 2: accuracy degrades overall with fault rate (allowing local
    # noise): the first half of the curve averages higher than the second half.
    mid = len(rates) // 2
    assert no_retraining[:mid].mean() > no_retraining[mid:].mean()

    # Shape check 3: more retraining shifts the curve up at every fault rate
    # (within a small tolerance for evaluation noise).
    assert np.all(most_retraining >= no_retraining - 0.05)
    assert most_retraining.mean() > no_retraining.mean()

    print("\nFig. 2a analogue (preset=fast, dataset=synthetic, clean acc "
          f"{result.clean_accuracy:.3f}):")
    print(result.render())
    for row in result.rows():
        print(
            f"  epochs={row['retraining_epochs']:<5g} rate={row['fault_rate']:.2f} "
            f"acc={row['mean_accuracy']:.3f} [{row['min_accuracy']:.3f}, {row['max_accuracy']:.3f}]"
        )
