"""Micro-benchmarks of the substrate the experiments are built on.

Unlike the figure-level benchmarks (which run once), these use repeated timing
so regressions in the hot paths — convolution forward/backward, fault-mask
generation, one fault-aware training step, resilience-profile lookups — are
visible in the pytest-benchmark statistics.
"""

import numpy as np
import pytest

from repro import nn
from repro.accelerator import FaultMap, model_fault_masks
from repro.core import AccuracyConstraint, ResilienceDrivenPolicy
from repro.core.chips import Chip
from repro.data import DataLoader
from repro.models import build_model
from repro.nn import functional as F
from repro.training import Trainer, TrainingConfig

RNG = np.random.default_rng(0)


@pytest.fixture(scope="module")
def conv_inputs():
    x = nn.Tensor(RNG.standard_normal((8, 16, 16, 16)).astype(np.float32), requires_grad=True)
    weight = nn.Tensor(RNG.standard_normal((32, 16, 3, 3)).astype(np.float32), requires_grad=True)
    bias = nn.Tensor(RNG.standard_normal(32).astype(np.float32), requires_grad=True)
    return x, weight, bias


def test_bench_conv2d_forward(benchmark, conv_inputs):
    x, weight, bias = conv_inputs
    with nn.no_grad():
        result = benchmark(lambda: F.conv2d(x, weight, bias, stride=1, padding=1))
    assert result.shape == (8, 32, 16, 16)


def test_bench_conv2d_forward_backward(benchmark, conv_inputs):
    x, weight, bias = conv_inputs

    def step():
        out = F.conv2d(x, weight, bias, stride=1, padding=1)
        loss = (out * out).mean()
        x.grad = weight.grad = bias.grad = None
        loss.backward()
        return loss.item()

    loss_value = benchmark(step)
    assert np.isfinite(loss_value)


def test_bench_fault_mask_generation_vgg11(benchmark):
    """Mask generation for a full-width VGG11 on the paper's 256x256 array."""
    model = build_model("vgg11", (3, 32, 32), 10, seed=0, width_multiplier=1.0)
    fault_map = FaultMap.random(256, 256, 0.1, seed=0)
    masks = benchmark(model_fault_masks, model, fault_map)
    total = sum(int(mask.sum()) for mask in masks.values())
    assert total > 0


def test_bench_fault_aware_training_step(benchmark, fast_context):
    """Masked-retrain-step: one masked optimizer step of the fast preset's model."""
    context = fast_context
    context.restore_pretrained()
    masks = model_fault_masks(context.model, FaultMap.random(*context.array.shape, 0.2, seed=0))
    trainer = Trainer(
        context.model,
        context.bundle.train,
        context.bundle.test,
        config=TrainingConfig(learning_rate=0.01, batch_size=40, seed=0),
        masks=masks,
    )
    benchmark(trainer._train_steps, 1)
    context.restore_pretrained()


def test_bench_evaluation_pass(benchmark, fast_context):
    """Full test-set evaluation of the fast preset's model."""
    from repro.training import evaluate_accuracy

    accuracy = benchmark(evaluate_accuracy, fast_context.model, fast_context.bundle.test)
    assert 0.0 <= accuracy <= 1.0


def _population_mask_sets(context, num_chips=16):
    fault_maps = [
        FaultMap.random(*context.array.shape, 0.05 + 0.015 * i, seed=100 + i)
        for i in range(num_chips)
    ]
    return [model_fault_masks(context.model, fault_map) for fault_map in fault_maps]


def test_bench_population_evaluation_serial(benchmark, fast_context):
    """Population-evaluation baseline: B chips evaluated one at a time.

    This is the pre-batching code path (restore pre-trained weights, apply
    the chip's masks, run a full test-set pass) — the comparator for the
    batched benchmark below.
    """
    from repro.training import apply_weight_masks, evaluate_accuracy

    context = fast_context
    mask_sets = _population_mask_sets(context)

    def run():
        accuracies = []
        for masks in mask_sets:
            context.restore_pretrained()
            apply_weight_masks(context.model, masks)
            accuracies.append(evaluate_accuracy(context.model, context.bundle.test))
        return accuracies

    accuracies = benchmark(run)
    context.restore_pretrained()
    assert len(accuracies) == len(mask_sets)


def test_bench_population_evaluation_batched(benchmark, fast_context):
    """Population-evaluation via the batched multi-chip evaluator.

    Same 16 chips and test set as the serial benchmark; results are required
    to match the serial path exactly (see tests/test_batched_eval.py).
    """
    from repro.accelerator import evaluate_chip_accuracies

    context = fast_context
    context.restore_pretrained()
    mask_sets = _population_mask_sets(context)
    accuracies = benchmark(
        evaluate_chip_accuracies, context.model, context.bundle.test, mask_sets
    )
    assert len(accuracies) == len(mask_sets)


def test_bench_population_triage(benchmark, fast_context, fast_population):
    """Step-2.5 triage: batched accuracy_before for the whole population."""
    framework = fast_context.framework()
    triage = benchmark(framework.triage_population, fast_population)
    assert len(triage) == len(fast_population)


def _fat_mask_sets(context, num_chips=8):
    fault_maps = [
        FaultMap.random(*context.array.shape, 0.08 + 0.02 * i, seed=200 + i)
        for i in range(num_chips)
    ]
    return [model_fault_masks(context.model, fault_map) for fault_map in fault_maps]


def test_bench_fat_retraining_serial_8chips(benchmark, fast_context):
    """Baseline Step 3: 8 chips retrained one at a time (0.5 epochs each).

    This is the pre-batching campaign inner loop — restore the pre-trained
    weights, train under the chip's masks, evaluate — and the comparator for
    the batched benchmark below.
    """
    context = fast_context
    mask_sets = _fat_mask_sets(context)
    config = TrainingConfig(learning_rate=0.04, batch_size=40, seed=0)

    def run():
        accuracies = []
        for masks in mask_sets:
            context.restore_pretrained()
            trainer = Trainer(
                context.model,
                context.bundle.train,
                context.bundle.test,
                config=config,
                masks=masks,
            )
            history = trainer.train(0.5, include_initial=False)
            accuracies.append(history.final_accuracy)
        return accuracies

    accuracies = benchmark(run)
    context.restore_pretrained()
    assert len(accuracies) == len(mask_sets)


def test_bench_fat_retraining_batched_8chips(benchmark, fast_context):
    """Batched Step 3: the same 8 chips retrained in one stacked loop.

    Same chips, data, config and seed as the serial benchmark; per-chip
    results are bit-identical (see tests/test_batched_fat.py).  The paper's
    dominant cost is exactly this loop, so the serial/batched ratio here is
    the campaign-throughput lever at --jobs 1.
    """
    from repro.accelerator.batched import BatchedFaultTrainer

    context = fast_context
    mask_sets = _fat_mask_sets(context)
    config = TrainingConfig(learning_rate=0.04, batch_size=40, seed=0)

    def run():
        context.restore_pretrained()
        trainer = BatchedFaultTrainer(
            context.model,
            mask_sets,
            context.bundle.train,
            context.bundle.test,
            config=config,
        )
        histories = trainer.train(0.5, include_initial=False)
        return [history.final_accuracy for history in histories]

    accuracies = benchmark(run)
    context.restore_pretrained()
    assert len(accuracies) == len(mask_sets)


def _mlp_fat_setup(context, num_chips=8):
    mask_sets = [
        model_fault_masks(
            context.model, FaultMap.random(*context.array.shape, 0.05 + 0.02 * i, seed=300 + i)
        )
        for i in range(num_chips)
    ]
    config = TrainingConfig(learning_rate=0.05, batch_size=32, seed=0)
    return mask_sets, config


def test_bench_fat_retraining_serial_mlp_8chips(benchmark, smoke_context):
    """Serial FAT baseline on the MLP (smoke) workload: 8 chips, 1 epoch each."""
    context = smoke_context
    mask_sets, config = _mlp_fat_setup(context)

    def run():
        accuracies = []
        for masks in mask_sets:
            context.restore_pretrained()
            trainer = Trainer(
                context.model,
                context.bundle.train,
                context.bundle.test,
                config=config,
                masks=masks,
            )
            accuracies.append(trainer.train(1.0, include_initial=False).final_accuracy)
        return accuracies

    accuracies = benchmark(run)
    context.restore_pretrained()
    assert len(accuracies) == len(mask_sets)


def test_bench_fat_retraining_batched_mlp_8chips(benchmark, smoke_context):
    """Batched FAT on the MLP (smoke) workload: the same 8 chips in one loop.

    The MLP's per-step arrays are tiny, so the serial loop is dominated by
    per-chip Python/autograd overhead — exactly what the stacked trainer
    amortizes; this is the upper end of the batched-FAT speedup range.
    """
    from repro.accelerator.batched import BatchedFaultTrainer

    context = smoke_context
    mask_sets, config = _mlp_fat_setup(context)

    def run():
        context.restore_pretrained()
        trainer = BatchedFaultTrainer(
            context.model,
            mask_sets,
            context.bundle.train,
            context.bundle.test,
            config=config,
        )
        return [h.final_accuracy for h in trainer.train(1.0, include_initial=False)]

    accuracies = benchmark(run)
    context.restore_pretrained()
    assert len(accuracies) == len(mask_sets)


def _bn_fat_setup(context, num_chips=4):
    """A vgg11_mini (training-mode BatchNorm) FAT workload at fast scale."""
    from repro.models import vgg11_mini

    model = vgg11_mini(
        input_shape=context.bundle.input_shape,
        num_classes=context.bundle.num_classes,
        seed=0,
    )
    pretrained = model.state_dict()
    mask_sets = [
        model_fault_masks(
            model, FaultMap.random(*context.array.shape, 0.06 + 0.03 * i, seed=400 + i)
        )
        for i in range(num_chips)
    ]
    config = TrainingConfig(learning_rate=0.02, batch_size=40, seed=0)
    return model, pretrained, mask_sets, config


def test_bench_fat_retraining_serial_batchnorm_4chips(benchmark, fast_context):
    """Serial FAT on the training-mode-BatchNorm workload (vgg11_mini).

    Exercises the fused batch-norm autograd op (previously ~15 generic
    autograd nodes per BN layer, profiled at ~20% of a vgg11_mini step) and
    the comparator for the stacked run below.
    """
    context = fast_context
    model, pretrained, mask_sets, config = _bn_fat_setup(context)

    def run():
        accuracies = []
        for masks in mask_sets:
            model.load_state_dict(pretrained)
            trainer = Trainer(
                model, context.bundle.train, context.bundle.test, config=config, masks=masks
            )
            accuracies.append(trainer.train(0.25, include_initial=False).final_accuracy)
        return accuracies

    accuracies = benchmark(run)
    assert len(accuracies) == len(mask_sets)


def test_bench_fat_retraining_batched_batchnorm_4chips(benchmark, fast_context):
    """Batched FAT on the BatchNorm workload: the stacked path, no fallback.

    Training-mode BatchNorm previously forced this model onto the serial
    per-chip trainer; the stacked per-chip-fold batch norm keeps the whole
    VGG-style flagship on the batched substrate, bit-identical to serial.
    """
    from repro.accelerator.batched import BatchedFaultTrainer

    context = fast_context
    model, pretrained, mask_sets, config = _bn_fat_setup(context)

    def run():
        model.load_state_dict(pretrained)
        trainer = BatchedFaultTrainer(
            model, mask_sets, context.bundle.train, context.bundle.test, config=config
        )
        return [h.final_accuracy for h in trainer.train(0.25, include_initial=False)]

    accuracies = benchmark(run)
    assert len(accuracies) == len(mask_sets)


def test_bench_resilience_profile_lookup(benchmark, fast_profile):
    """Step-2 lookups must be effectively free compared with retraining."""
    chip = Chip("bench", FaultMap.random(64, 64, 0.17, seed=5))
    policy = ResilienceDrivenPolicy(
        profile=fast_profile,
        constraint=AccuracyConstraint.within_drop_of_clean(0.02),
        statistic="max",
    )
    epochs = benchmark(policy.epochs_for_chip, chip)
    assert epochs >= 0.0


def test_bench_dataloader_iteration(benchmark, fast_context):
    loader = DataLoader(fast_context.bundle.train, batch_size=40, shuffle=True, seed=0)

    def run_epoch():
        count = 0
        for _inputs, _targets in loader:
            count += 1
        return count

    batches = benchmark(run_epoch)
    assert batches == len(loader)


# ---------------------------------------------------------------------------
# Pipelined eval path: multi-checkpoint retraining + sweep-wide reuse
# ---------------------------------------------------------------------------


CHECKPOINT_EVAL_CHECKPOINTS = (0.05, 0.10, 0.15, 0.20, 0.25)


def _checkpoint_eval_run(context, mask_sets, *, pipelined, lowering_cache=None):
    """One eval-dominated retraining run: 0.25 epochs, 5 checkpoint evals.

    Mirrors the production sweep shape (``resilience.py`` / ``reduce.py``):
    the initial accuracy is already known from triage, so the run evaluates
    only at the epoch checkpoints (``include_initial=False``).

    ``pipelined=False`` is the eager eval path — no prefetch thread, no
    deferred/widened multi-checkpoint pass, a zero-byte cache so every
    checkpoint re-lowers every eval batch.  ``pipelined=True`` is the
    default path.
    """
    from repro.accelerator.batched import BatchedFaultTrainer, LoweringCache

    if lowering_cache is None:
        lowering_cache = LoweringCache() if pipelined else LoweringCache(max_bytes=0)
    context.restore_pretrained()
    trainer = BatchedFaultTrainer(
        context.model,
        mask_sets,
        context.bundle.train,
        context.bundle.test,
        config=TrainingConfig(learning_rate=0.04, batch_size=40, seed=0),
        lowering_cache=lowering_cache,
        prefetch=pipelined,
        widened_eval=pipelined,
    )
    histories = trainer.train(
        0.25, eval_checkpoints=CHECKPOINT_EVAL_CHECKPOINTS, include_initial=False
    )
    return [history.final_accuracy for history in histories]


def test_bench_checkpoint_eval_baseline_8chips(benchmark, fast_context):
    """Eager multi-checkpoint eval: 8 chips x 5 per-checkpoint eval passes.

    The pre-pipelining campaign eval loop — each checkpoint interrupts
    training for its own stacked B-chip pass, re-lowering the eval batches
    every time — and the comparator for the pipelined benchmark below.
    """
    context = fast_context
    mask_sets = _fat_mask_sets(context)
    accuracies = benchmark(
        _checkpoint_eval_run, context, mask_sets, pipelined=False
    )
    context.restore_pretrained()
    assert len(accuracies) == len(mask_sets)


def test_bench_checkpoint_eval_pipelined_8chips(benchmark, fast_context):
    """Pipelined multi-checkpoint eval: same 8 chips, same 5 checkpoints.

    Checkpoints snapshot the stacked weights; at 10 train batches per epoch
    the 5 checkpoints quantize to 2 unique optimizer steps, so the deferred
    pass evaluates 2 snapshots as one widened (2*8)-chip GEMM over lowerings
    cached once (and prefetched in the background) instead of 5 eager
    passes; results are bit-identical to the eager baseline (see
    tests/test_pipelined_eval.py).
    """
    context = fast_context
    mask_sets = _fat_mask_sets(context)
    accuracies = benchmark(
        _checkpoint_eval_run, context, mask_sets, pipelined=True
    )
    context.restore_pretrained()
    assert len(accuracies) == len(mask_sets)


def test_bench_sweep_eval_reuse_2arms(benchmark, fast_context):
    """Checkpoints x strategies scaling: 2 arms sharing one lowering cache.

    Models a strategy sweep's eval load — K arms retrain the same population
    and walk the same unshuffled eval batches — with the sweep-wide shared
    cache: arm 2 hits every lowering arm 1 computed, so eval-lowering cost
    stays O(batches), not O(arms x batches).
    """
    from repro.accelerator.batched import LoweringCache

    context = fast_context
    mask_sets = _fat_mask_sets(context)

    def run():
        cache = LoweringCache()
        return [
            _checkpoint_eval_run(
                context, mask_sets, pipelined=True, lowering_cache=cache
            )
            for _arm in range(2)
        ]

    arms = benchmark(run)
    context.restore_pretrained()
    assert len(arms) == 2 and all(len(arm) == len(mask_sets) for arm in arms)


# ---------------------------------------------------------------------------
# Compute-backend replay: reference vs fused
# ---------------------------------------------------------------------------


def _backend_eval_benchmark(benchmark, context, backend):
    """Repeated batched evaluation through a warmed graph-cache replay."""
    from repro.accelerator.batched import BatchedFaultEvaluator

    context.restore_pretrained()
    mask_sets = _population_mask_sets(context, num_chips=8)
    evaluator = BatchedFaultEvaluator(context.model, mask_sets, backend=backend)
    batch = RNG.standard_normal((64,) + context.bundle.input_shape).astype(np.float32)
    evaluator.evaluate_logits(batch)  # capture + compile outside the timed region
    logits = benchmark(evaluator.evaluate_logits, batch)
    assert logits.shape[0] == len(mask_sets)


def test_bench_backend_eval_reference(benchmark, fast_context):
    """Replay baseline: the ``numpy`` reference backend (bit-identical)."""
    _backend_eval_benchmark(benchmark, fast_context, "numpy")


def test_bench_backend_eval_fused(benchmark, fast_context):
    """Fused-backend comparator for the reference replay above.

    Only meaningful against the JIT-compiled kernels: without numba the
    fused backend runs interpreted, so the pair would compare two numpy
    paths.  Skipping (rather than failing) keeps the benchmark suite —
    and its >30% regression gate — usable in minimal environments.
    """
    from repro.backends import get_backend, numba_available

    if not numba_available():
        pytest.skip(
            "numba unavailable: fused backend runs interpreted, skipping the "
            "JIT benchmark (install numba to measure the fused speedup)"
        )
    _backend_eval_benchmark(benchmark, fast_context, get_backend("fused"))
