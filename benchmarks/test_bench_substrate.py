"""Micro-benchmarks of the substrate the experiments are built on.

Unlike the figure-level benchmarks (which run once), these use repeated timing
so regressions in the hot paths — convolution forward/backward, fault-mask
generation, one fault-aware training step, resilience-profile lookups — are
visible in the pytest-benchmark statistics.
"""

import numpy as np
import pytest

from repro import nn
from repro.accelerator import FaultMap, model_fault_masks
from repro.core import AccuracyConstraint, ResilienceDrivenPolicy
from repro.core.chips import Chip
from repro.data import DataLoader
from repro.models import build_model
from repro.nn import functional as F
from repro.training import Trainer, TrainingConfig

RNG = np.random.default_rng(0)


@pytest.fixture(scope="module")
def conv_inputs():
    x = nn.Tensor(RNG.standard_normal((8, 16, 16, 16)).astype(np.float32), requires_grad=True)
    weight = nn.Tensor(RNG.standard_normal((32, 16, 3, 3)).astype(np.float32), requires_grad=True)
    bias = nn.Tensor(RNG.standard_normal(32).astype(np.float32), requires_grad=True)
    return x, weight, bias


def test_bench_conv2d_forward(benchmark, conv_inputs):
    x, weight, bias = conv_inputs
    with nn.no_grad():
        result = benchmark(lambda: F.conv2d(x, weight, bias, stride=1, padding=1))
    assert result.shape == (8, 32, 16, 16)


def test_bench_conv2d_forward_backward(benchmark, conv_inputs):
    x, weight, bias = conv_inputs

    def step():
        out = F.conv2d(x, weight, bias, stride=1, padding=1)
        loss = (out * out).mean()
        x.grad = weight.grad = bias.grad = None
        loss.backward()
        return loss.item()

    loss_value = benchmark(step)
    assert np.isfinite(loss_value)


def test_bench_fault_mask_generation_vgg11(benchmark):
    """Mask generation for a full-width VGG11 on the paper's 256x256 array."""
    model = build_model("vgg11", (3, 32, 32), 10, seed=0, width_multiplier=1.0)
    fault_map = FaultMap.random(256, 256, 0.1, seed=0)
    masks = benchmark(model_fault_masks, model, fault_map)
    total = sum(int(mask.sum()) for mask in masks.values())
    assert total > 0


def test_bench_fault_aware_training_step(benchmark, fast_context):
    """One masked optimizer step of the fast preset's model."""
    context = fast_context
    context.restore_pretrained()
    masks = model_fault_masks(context.model, FaultMap.random(*context.array.shape, 0.2, seed=0))
    trainer = Trainer(
        context.model,
        context.bundle.train,
        context.bundle.test,
        config=TrainingConfig(learning_rate=0.01, batch_size=40, seed=0),
        masks=masks,
    )
    benchmark(trainer._train_steps, 1)
    context.restore_pretrained()


def test_bench_evaluation_pass(benchmark, fast_context):
    """Full test-set evaluation of the fast preset's model."""
    from repro.training import evaluate_accuracy

    accuracy = benchmark(evaluate_accuracy, fast_context.model, fast_context.bundle.test)
    assert 0.0 <= accuracy <= 1.0


def test_bench_resilience_profile_lookup(benchmark, fast_profile):
    """Step-2 lookups must be effectively free compared with retraining."""
    chip = Chip("bench", FaultMap.random(64, 64, 0.17, seed=5))
    policy = ResilienceDrivenPolicy(
        profile=fast_profile,
        constraint=AccuracyConstraint.within_drop_of_clean(0.02),
        statistic="max",
    )
    epochs = benchmark(policy.epochs_for_chip, chip)
    assert epochs >= 0.0


def test_bench_dataloader_iteration(benchmark, fast_context):
    loader = DataLoader(fast_context.bundle.train, batch_size=40, shuffle=True, seed=0)

    def run_epoch():
        count = 0
        for _inputs, _targets in loader:
            count += 1
        return count

    batches = benchmark(run_epoch)
    assert batches == len(loader)
