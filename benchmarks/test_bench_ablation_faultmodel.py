"""Ablation A2: sensitivity of the resilience profile to the fault model and array size.

The paper assumes a uniformly random fault model on a 256x256 array.  This
ablation checks how the no-retraining accuracy degradation changes when the
faults are spatially clustered or kill whole columns, and when the array is
smaller (which makes the periodic fault pattern coarser relative to the layer
sizes).
"""

import numpy as np
import pytest

from bench_utils import run_once
from repro.accelerator import (
    ClusteredFaultModel,
    ColumnFaultModel,
    FaultMap,
    RandomFaultModel,
    model_fault_masks,
    masked_weight_fraction,
)
from repro.mitigation import build_fap_masks
from repro.training import apply_weight_masks, evaluate_accuracy
from repro.utils.rng import derive_seed

FAULT_RATE = 0.2
TRIALS = 3


def _mean_fap_accuracy(context, fault_model, rows, cols):
    accuracies = []
    for trial in range(TRIALS):
        seed = derive_seed(context.preset.seed, "ablation-a2", fault_model.name, rows, trial)
        rng = np.random.default_rng(seed)
        fault_map = fault_model.sample(rows, cols, FAULT_RATE, rng)
        context.restore_pretrained()
        apply_weight_masks(context.model, build_fap_masks(context.model, fault_map))
        accuracies.append(evaluate_accuracy(context.model, context.bundle.test))
    context.restore_pretrained()
    return float(np.mean(accuracies))


def test_ablation_fault_model_sensitivity(benchmark, fast_context):
    models = {
        "random": RandomFaultModel(),
        "clustered": ClusteredFaultModel(cluster_size=16),
        "column": ColumnFaultModel(),
    }
    rows, cols = fast_context.array.shape

    def run_sweep():
        return {name: _mean_fap_accuracy(fast_context, model, rows, cols) for name, model in models.items()}

    accuracies = run_once(benchmark, run_sweep)

    print(f"\nAblation A2a: FAP-only accuracy at fault rate {FAULT_RATE} by fault model")
    for name, accuracy in accuracies.items():
        print(f"  {name:>10}: {accuracy:.3f}")

    clean = fast_context.clean_accuracy
    # Every fault model hurts accuracy at 20 % faults, whatever its shape.
    for name, accuracy in accuracies.items():
        assert accuracy <= clean + 0.02, name
    # Whole-column faults zero entire output channels and are at least as
    # damaging as the same number of uniformly spread faults.
    assert accuracies["column"] <= accuracies["random"] + 0.05


def test_ablation_array_size_sensitivity(benchmark, fast_context):
    sizes = (16, 32, 64)

    def run_sweep():
        return {
            size: _mean_fap_accuracy(fast_context, RandomFaultModel(), size, size) for size in sizes
        }

    accuracies = run_once(benchmark, run_sweep)

    print(f"\nAblation A2b: FAP-only accuracy at fault rate {FAULT_RATE} by array size")
    for size, accuracy in accuracies.items():
        print(f"  {size:>3}x{size:<3}: {accuracy:.3f}")

    # The masked-weight fraction equals the fault rate regardless of array
    # size, so accuracy should be in the same ballpark for every size.
    values = np.array(list(accuracies.values()))
    assert values.max() - values.min() < 0.45
    for size in sizes:
        fault_map = FaultMap.random(size, size, FAULT_RATE, seed=0)
        masks = model_fault_masks(fast_context.model, fault_map)
        assert masked_weight_fraction(masks) == pytest.approx(FAULT_RATE, abs=0.05)
