"""Benchmarks regenerating Fig. 3a-e: per-chip retraining campaigns per policy.

Each benchmark retrains the pre-trained model for every chip in the shared
population under one retraining policy and asserts the per-policy claims made
in the paper:

* Fig. 3a (``reduce-max``): nearly all chips meet the accuracy constraint;
* Fig. 3b (``reduce-mean``): cheaper but meets the constraint less often
  (the mean statistic under-trains);
* Fig. 3c-e (fixed budgets): the fraction of chips meeting the constraint
  grows with the fixed budget.
"""

import numpy as np
import pytest

from bench_utils import run_once
from repro.core.reporting import campaign_scatter_csv


@pytest.fixture(scope="module")
def framework(fast_context, fast_profile):
    framework = fast_context.framework()
    framework.set_profile(fast_profile)
    return framework


def _print_campaign(campaign):
    print(f"\npolicy={campaign.policy_name}  target={campaign.target_accuracy:.3f}")
    print(f"  avg epochs/chip = {campaign.average_epochs:.4f}")
    print(f"  % meeting constraint = {campaign.percent_meeting_constraint:.1f}")
    print(campaign_scatter_csv(campaign))


def test_fig3a_reduce_max_policy(benchmark, framework, fast_population):
    campaign = run_once(benchmark, framework.run, fast_population, statistic="max")
    _print_campaign(campaign)
    # The max statistic is chosen for confidence: the large majority of chips
    # must meet the constraint.
    assert campaign.fraction_meeting_constraint >= 0.75
    # Low-fault-rate chips must be nearly free: the policy adapts per chip.
    cheapest = campaign.epochs().min()
    most_expensive = campaign.epochs().max()
    assert cheapest <= 0.1
    assert most_expensive > cheapest


def test_fig3b_reduce_mean_policy(benchmark, framework, fast_population):
    reduce_max = framework.run(fast_population, statistic="max")
    campaign = run_once(benchmark, framework.run, fast_population, statistic="mean")
    _print_campaign(campaign)
    # The mean statistic spends no more than the max statistic on average...
    assert campaign.average_epochs <= reduce_max.average_epochs + 1e-9
    # ...and (as the paper observes) under-trains: it cannot meaningfully beat
    # reduce-max on the fraction of chips meeting the constraint (tolerance of
    # one chip to absorb training noise).
    one_chip = 1.0 / len(fast_population)
    assert campaign.fraction_meeting_constraint <= reduce_max.fraction_meeting_constraint + one_chip + 1e-9


@pytest.mark.parametrize("budget_index", [0, 1, 2], ids=["fig3c-low", "fig3d-mid", "fig3e-high"])
def test_fig3cde_fixed_policies(benchmark, framework, fast_context, fast_population, budget_index):
    budget = fast_context.preset.fixed_policy_epochs[budget_index]
    campaign = run_once(benchmark, framework.run_fixed_policy, fast_population, budget)
    _print_campaign(campaign)
    assert campaign.average_epochs == pytest.approx(budget, rel=0.05)
    # Every chip gets exactly the same budget under the fixed policy.
    assert np.allclose(campaign.epochs(), budget, rtol=0.05)


def test_fig3_fixed_policy_satisfaction_grows_with_budget(benchmark, framework, fast_context, fast_population):
    """Summary property of Fig. 3c-e: more fixed retraining -> more chips pass."""

    def run_all_fixed():
        return [
            framework.run_fixed_policy(fast_population, budget)
            for budget in fast_context.preset.fixed_policy_epochs
        ]

    campaigns = run_once(benchmark, run_all_fixed)
    fractions = [campaign.fraction_meeting_constraint for campaign in campaigns]
    print("\nfixed budgets:", list(fast_context.preset.fixed_policy_epochs))
    print("fraction meeting constraint:", [round(fraction, 3) for fraction in fractions])
    assert fractions == sorted(fractions)
    assert fractions[-1] > fractions[0]
