"""Ablation A1: FAP vs FAM vs FAT accuracy at fixed fault rates.

This reproduces the motivation of §I of the paper: fault-aware pruning alone
loses accuracy, saliency-driven mapping (SalvageDNN) recovers part of it for
free, and fault-aware training recovers the most — which is why the paper
focuses on reducing FAT's retraining cost rather than avoiding FAT.
"""

import dataclasses

import numpy as np
import pytest

from bench_utils import run_once
from repro.accelerator import FaultMap
from repro.mitigation import apply_fam, apply_fap, fault_aware_retrain
from repro.training import evaluate_accuracy
from repro.utils.rng import derive_seed

FAULT_RATES = (0.1, 0.2, 0.3)
RETRAIN_EPOCHS = 1.0


def _evaluate_mitigations(context, fault_rate, seed):
    """Accuracy of clean / FAP / FAM / FAT models for one random fault map."""
    rows, cols = context.array.shape
    fault_map = FaultMap.random(rows, cols, fault_rate, seed=seed)
    results = {}

    context.restore_pretrained()
    results["clean"] = context.clean_accuracy

    context.restore_pretrained()
    apply_fap(context.model, fault_map)
    results["fap"] = evaluate_accuracy(context.model, context.bundle.test)

    context.restore_pretrained()
    apply_fam(context.model, fault_map)
    results["fam"] = evaluate_accuracy(context.model, context.bundle.test)

    context.restore_pretrained()
    config = dataclasses.replace(context.preset.retraining, seed=seed)
    fat = fault_aware_retrain(
        context.model, fault_map, context.bundle, epochs=RETRAIN_EPOCHS, config=config
    )
    results["fat"] = fat.final_accuracy

    context.restore_pretrained()
    return results


def test_ablation_fap_fam_fat(benchmark, fast_context):
    def run_ablation():
        rows = {}
        for rate in FAULT_RATES:
            seed = derive_seed(fast_context.preset.seed, "ablation-a1", f"{rate:.3f}")
            rows[rate] = _evaluate_mitigations(fast_context, rate, seed)
        return rows

    table = run_once(benchmark, run_ablation)

    print("\nAblation A1: accuracy by mitigation technique")
    print(f"{'fault rate':>10} | {'clean':>7} {'FAP':>7} {'FAM':>7} {'FAT(1ep)':>9}")
    for rate, row in table.items():
        print(f"{rate:>10.2f} | {row['clean']:>7.3f} {row['fap']:>7.3f} {row['fam']:>7.3f} {row['fat']:>9.3f}")

    for rate, row in table.items():
        # FAT recovers (almost) everything FAP lost.
        assert row["fat"] >= row["fap"] - 0.02
    # FAM steers low-saliency weights onto faulty PEs; the saliency proxy is
    # not perfect per fault map, but on average over fault rates it should not
    # be worse than naive FAP.
    fam_mean = np.mean([row["fam"] for row in table.values()])
    fap_mean = np.mean([row["fap"] for row in table.values()])
    assert fam_mean >= fap_mean - 0.02
    # At the highest fault rate FAT must clearly beat pruning-only mitigation.
    worst = table[max(FAULT_RATES)]
    assert worst["fat"] > worst["fap"]
