"""Benchmarks of the campaign engine: serial vs parallel throughput.

The campaign engine shards per-chip fault-aware retraining across worker
processes.  These benchmarks retrain a slice of the fast-preset chip
population under a fixed budget once serially and once through a
multiprocessing pool, record chips/second for both, and assert the paper's
invariant that parallelism must not change results: serial and parallel runs
are bit-identical.
"""

import multiprocessing

import pytest

from bench_utils import run_once
from repro.campaign import CampaignEngine, SupervisorConfig, run_strategy_sweep
from repro.core.chips import ChipPopulation
from repro.core.selection import FixedEpochPolicy

BUDGET = 0.25
PARALLEL_JOBS = max(2, min(4, multiprocessing.cpu_count()))


@pytest.fixture(scope="module")
def bench_population(fast_population):
    """A slice of the shared population (enough work to amortize pool startup)."""
    return ChipPopulation(fast_population.chips[:8])


def _record_throughput(benchmark, engine):
    report = engine.last_report
    benchmark.extra_info["jobs"] = report.jobs
    benchmark.extra_info["chips"] = report.total_chips
    benchmark.extra_info["chips_per_second"] = round(report.chips_per_second, 3)
    print(f"\ncampaign throughput: {report.describe()} "
          f"({report.chips_per_second:.2f} chips/s)")


def test_bench_campaign_serial(benchmark, fast_context, bench_population):
    engine = CampaignEngine(fast_context, jobs=1)
    campaign = run_once(benchmark, engine.run, bench_population, FixedEpochPolicy(BUDGET))
    _record_throughput(benchmark, engine)
    assert campaign.num_chips == len(bench_population)
    assert campaign.average_epochs == pytest.approx(BUDGET, rel=0.05)


def test_bench_campaign_parallel_matches_serial(benchmark, fast_context, bench_population):
    serial = CampaignEngine(fast_context, jobs=1).run(bench_population, FixedEpochPolicy(BUDGET))
    engine = CampaignEngine(fast_context, jobs=PARALLEL_JOBS)
    campaign = run_once(benchmark, engine.run, bench_population, FixedEpochPolicy(BUDGET))
    _record_throughput(benchmark, engine)
    # Sharding must be invisible in the results: bit-identical to serial.
    assert campaign.results == serial.results


FAT_BATCH = 6


def test_bench_campaign_batched_jobs1(benchmark, fast_context, fast_population):
    """Fixed-budget campaign throughput at --jobs 1 x --fat-batch 6.

    The baseline of the --jobs scaling pair below: the full fast-preset
    population (24 chips -> 4 stacked chunks) executes inline in one process.
    """
    engine = CampaignEngine(fast_context, jobs=1, fat_batch=FAT_BATCH)
    campaign = run_once(benchmark, engine.run, fast_population, FixedEpochPolicy(BUDGET))
    _record_throughput(benchmark, engine)
    assert campaign.num_chips == len(fast_population)


def test_bench_campaign_batched_jobsN(benchmark, fast_context, fast_population):
    """Fixed-budget campaign throughput at --jobs N x --fat-batch 6.

    The planner hands whole stacked chunks to the worker pool, so the
    stacked-GEMM batching and the process-level parallelism compose; results
    must remain bit-identical to the inline batched run.
    """
    baseline = CampaignEngine(fast_context, jobs=1, fat_batch=FAT_BATCH).run(
        fast_population, FixedEpochPolicy(BUDGET)
    )
    engine = CampaignEngine(fast_context, jobs=PARALLEL_JOBS, fat_batch=FAT_BATCH)
    campaign = run_once(benchmark, engine.run, fast_population, FixedEpochPolicy(BUDGET))
    _record_throughput(benchmark, engine)
    assert campaign.results == baseline.results


SWEEP_STRATEGIES = "fat,fap+fat,bypass"


def _record_sweep_throughput(benchmark, sweep):
    for name, report in sweep.reports.items():
        benchmark.extra_info[f"chips_per_second[{name}]"] = round(
            report.chips_per_second, 3
        )
        print(f"\nmitigation sweep [{name}]: {report.describe()} "
              f"({report.chips_per_second:.2f} chips/s)")


def test_bench_mitigation_sweep_jobs1(benchmark, fast_context, bench_population):
    """Multi-strategy mitigation sweep throughput at --jobs 1.

    The baseline of the sweep scaling pair: three strategies (classic FAT,
    FAP+FAT and bypass) over the same chips through one inline engine, with
    triage shared across the same-mask strategies.  Per-strategy chips/s
    lands in BENCH_campaign.json via extra_info.
    """
    sweep = run_once(
        benchmark,
        run_strategy_sweep,
        fast_context,
        bench_population,
        FixedEpochPolicy(BUDGET),
        SWEEP_STRATEGIES,
        jobs=1,
        fat_batch=FAT_BATCH,
    )
    _record_sweep_throughput(benchmark, sweep)
    assert sweep.strategy_names == ["fat", "fap+fat", "bypass"]
    assert all(
        campaign.num_chips == len(bench_population)
        for campaign in sweep.campaigns.values()
    )


def test_bench_mitigation_sweep_jobsN(benchmark, fast_context, bench_population):
    """Multi-strategy sweep at --jobs N: workers execute whole stacked chunks
    per strategy and every strategy's rows stay bit-identical to --jobs 1."""
    baseline = run_strategy_sweep(
        fast_context,
        bench_population,
        FixedEpochPolicy(BUDGET),
        SWEEP_STRATEGIES,
        jobs=1,
        fat_batch=FAT_BATCH,
    )
    sweep = run_once(
        benchmark,
        run_strategy_sweep,
        fast_context,
        bench_population,
        FixedEpochPolicy(BUDGET),
        SWEEP_STRATEGIES,
        jobs=PARALLEL_JOBS,
        fat_batch=FAT_BATCH,
    )
    _record_sweep_throughput(benchmark, sweep)
    for name in sweep.strategy_names:
        assert sweep.campaign(name).results == baseline.campaign(name).results


def test_bench_campaign_distributed_1worker(benchmark, fast_context, bench_population):
    """Fixed-budget campaign through the socket scheduler with ONE worker.

    The baseline of the distributed scaling pair: every chunk crosses the
    localhost TCP transport (claim/chunk/result frames plus the handshake's
    context build in the forked worker), so this pins the per-chunk transport
    overhead against the in-process runs above.
    """
    engine = CampaignEngine(
        fast_context, jobs=1, fat_batch=FAT_BATCH, listen=("127.0.0.1", 0)
    )
    try:
        campaign = run_once(
            benchmark, engine.run, bench_population, FixedEpochPolicy(BUDGET)
        )
    finally:
        engine.close()
    benchmark.extra_info["socket_workers"] = 1
    _record_throughput(benchmark, engine)
    assert campaign.num_chips == len(bench_population)


def test_bench_campaign_distributed_2workers(benchmark, fast_context, bench_population):
    """Same campaign over TWO socket workers: the distributed scaling point.

    Work-stealing claims should split the chunks across both workers, and the
    headline invariant must hold — rows bit-identical to the serial in-process
    engine, no matter which worker executed which chunk.
    """
    serial = CampaignEngine(fast_context, jobs=1, fat_batch=FAT_BATCH).run(
        bench_population, FixedEpochPolicy(BUDGET)
    )
    engine = CampaignEngine(
        fast_context, jobs=2, fat_batch=FAT_BATCH, listen=("127.0.0.1", 0)
    )
    try:
        campaign = run_once(
            benchmark, engine.run, bench_population, FixedEpochPolicy(BUDGET)
        )
    finally:
        engine.close()
    benchmark.extra_info["socket_workers"] = 2
    _record_throughput(benchmark, engine)
    assert campaign.results == serial.results


def test_bench_campaign_tracing_off(benchmark, fast_context, bench_population):
    """Baseline of the tracer-overhead pair: instrumented code, tracing off.

    Every span site in the engine/trainers costs one attribute check when the
    tracer is disabled; this benchmark (vs ``test_bench_campaign_tracing_on``)
    is the regression gate keeping the disabled path unmeasurable.
    """
    from repro.observability import metrics, trace

    trace.disable()
    metrics.enabled = False
    engine = CampaignEngine(fast_context, jobs=1, fat_batch=FAT_BATCH)
    campaign = run_once(benchmark, engine.run, bench_population, FixedEpochPolicy(BUDGET))
    _record_throughput(benchmark, engine)
    assert campaign.num_chips == len(bench_population)


def test_bench_campaign_tracing_on(benchmark, fast_context, bench_population, tmp_path_factory):
    """Same campaign with span tracing + metrics enabled.

    Pins the enabled-tracer overhead (per-span JSONL writes + hot-path
    timers) and the invariant that tracing never changes results: the traced
    run is bit-identical to the untraced baseline.
    """
    from repro.observability import metrics, trace

    baseline = CampaignEngine(fast_context, jobs=1, fat_batch=FAT_BATCH).run(
        bench_population, FixedEpochPolicy(BUDGET)
    )
    trace_dir = tmp_path_factory.mktemp("campaign-trace")
    trace.enable(trace_dir)
    metrics.enabled = True
    try:
        engine = CampaignEngine(fast_context, jobs=1, fat_batch=FAT_BATCH)
        campaign = run_once(
            benchmark, engine.run, bench_population, FixedEpochPolicy(BUDGET)
        )
    finally:
        trace.disable()
        metrics.enabled = False
        metrics.reset()
    _record_throughput(benchmark, engine)
    assert campaign.results == baseline.results
    assert (trace_dir / "trace.json").exists()


def test_bench_campaign_supervised_kill_recovery(benchmark, fast_context, bench_population):
    """Supervised dispatch with one injected worker SIGKILL mid-campaign.

    Pins the price of the recovery path — dead-worker detection, respawn,
    and one chunk re-execution — against ``test_bench_campaign_parallel``'s
    undisturbed dispatch, and asserts the headline guarantee: recovery is
    invisible in the results.
    """
    baseline = CampaignEngine(fast_context, jobs=PARALLEL_JOBS, fat_batch=FAT_BATCH).run(
        bench_population, FixedEpochPolicy(BUDGET)
    )
    engine = CampaignEngine(
        fast_context,
        jobs=PARALLEL_JOBS,
        fat_batch=FAT_BATCH,
        chaos="seed=3,kill=1",
        supervisor_config=SupervisorConfig(backoff_base=0.05, poll_interval=0.02),
    )
    campaign = run_once(benchmark, engine.run, bench_population, FixedEpochPolicy(BUDGET))
    _record_throughput(benchmark, engine)
    assert campaign.results == baseline.results
    assert not campaign.failed_chips


def test_bench_campaign_resume_is_free(benchmark, fast_context, bench_population, tmp_path_factory):
    """A warm store makes re-running a campaign O(read) instead of O(retrain)."""
    store_base = tmp_path_factory.mktemp("campaign-store")
    CampaignEngine(fast_context, jobs=1, store_base=store_base).run(
        bench_population, FixedEpochPolicy(BUDGET)
    )
    engine = CampaignEngine(fast_context, jobs=1, store_base=store_base)
    campaign = run_once(benchmark, engine.run, bench_population, FixedEpochPolicy(BUDGET))
    _record_throughput(benchmark, engine)
    assert engine.last_report.executed == 0
    assert engine.last_report.skipped == len(bench_population)
    assert campaign.num_chips == len(bench_population)
