"""Ablation A3: performance cost of PE-bypass mitigation vs FAP (+FAT).

Reproduces the motivation of §I: techniques that bypass faulty rows/columns
(Kim & Reddy style) preserve accuracy but shrink the effective array and so
cost throughput, while FAP keeps the full array (its cost is accuracy, which
FAT then recovers).  The benchmark quantifies the latency ratio on the fast
preset's model at several fault rates.
"""

import numpy as np
import pytest

from bench_utils import run_once
from repro.accelerator import (
    FaultMap,
    SystolicArray,
    best_bypass_plan,
    bypass_slowdown,
    estimate_model_energy,
    estimate_model_timing,
)

FAULT_RATES = (0.001, 0.005, 0.02)


def test_ablation_bypass_performance_cost(benchmark, fast_context):
    model = fast_context.model
    input_shape = fast_context.bundle.input_shape
    rows, cols = fast_context.array.shape

    def run_sweep():
        results = {}
        for rate in FAULT_RATES:
            fault_map = FaultMap.random(rows, cols, rate, seed=17)
            array = SystolicArray(rows, cols, fault_map=fault_map)
            plan = best_bypass_plan(fault_map)
            results[rate] = {
                "surviving_pe_fraction": plan.surviving_pe_fraction,
                "slowdown": bypass_slowdown(model, array, input_shape),
            }
        return results

    results = run_once(benchmark, run_sweep)

    print("\nAblation A3: PE-bypass cost vs FAP (which keeps full throughput)")
    print(f"{'fault rate':>10} | {'surviving PEs':>13} | {'bypass slowdown':>15}")
    for rate, row in results.items():
        print(f"{rate:>10.3f} | {row['surviving_pe_fraction']:>13.3f} | {row['slowdown']:>15.2f}x")

    slowdowns = [row["slowdown"] for row in results.values()]
    # Bypassing is never faster than the full array and gets worse with more faults.
    assert all(s >= 1.0 for s in slowdowns)
    assert slowdowns == sorted(slowdowns)
    # Even at a 2 % fault rate the bypass penalty is substantial (> 1.5x),
    # which is exactly why the paper builds on FAP + retraining instead.
    assert slowdowns[-1] > 1.5


def test_ablation_fap_energy_saving(benchmark, fast_context):
    """FAP side benefit: gated (zeroed) MACs save a little energy."""
    model = fast_context.model
    input_shape = fast_context.bundle.input_shape
    array = SystolicArray(*fast_context.array.shape)

    def run_sweep():
        dense = estimate_model_energy(model, array, input_shape)
        pruned = estimate_model_energy(model, array, input_shape, zero_weight_fraction=0.2)
        return dense.total_nj, pruned.total_nj

    dense_nj, pruned_nj = run_once(benchmark, run_sweep)
    print(f"\nAblation A3b: per-inference energy dense={dense_nj:.1f} nJ, "
          f"20% FAP-pruned={pruned_nj:.1f} nJ")
    assert pruned_nj < dense_nj
