"""Shared fixtures for the benchmark harness.

Every figure-level benchmark shares one pre-trained experiment context (the
``fast`` preset) so that the expensive pre-training step runs exactly once per
benchmark session.  The figure benchmarks use ``benchmark.pedantic(...,
rounds=1)`` because a single run already involves tens of retraining runs;
the substrate micro-benchmarks use normal repeated timing.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentContext, build_population, fast_preset, smoke_preset


@pytest.fixture(scope="session")
def fast_context():
    """Pre-trained context for the 'fast' preset (built once per session)."""
    return ExperimentContext.from_preset(fast_preset())


@pytest.fixture(scope="session")
def smoke_context():
    """Pre-trained context for the 'smoke' preset (MLP-scale workloads)."""
    return ExperimentContext.from_preset(smoke_preset())


@pytest.fixture(scope="session")
def fast_profile(fast_context):
    """The Step-1 resilience profile for the fast preset (computed once)."""
    return fast_context.resilience_profile()


@pytest.fixture(scope="session")
def fast_population(fast_context):
    """The faulty-chip population used by every Fig. 3 benchmark."""
    return build_population(fast_context)
