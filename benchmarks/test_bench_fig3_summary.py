"""Benchmark regenerating Fig. 3f: the policy-comparison summary and Pareto front.

Paper claim: "the proposed Reduce framework produces better (more robust)
models with lesser training compared to the fixed-policy techniques", i.e.
Reduce lies on the Pareto front of (average retraining epochs, % of chips
meeting the accuracy constraint).
"""

from bench_utils import run_once
from repro.experiments import run_fig3


def test_fig3f_policy_comparison_summary(benchmark, fast_context, fast_population):
    result = run_once(
        benchmark,
        run_fig3,
        fast_context,
        population=fast_population,
    )

    print(f"\nFig. 3f analogue (constraint = {result.target_accuracy:.3f}, "
          f"clean accuracy = {result.clean_accuracy:.3f}):")
    print(result.summary_table())
    print("\nPareto-optimal policies:", ", ".join(result.pareto_policies()))
    print()
    print(result.render_scatter())

    reduce_max = result.reduce_max
    # Headline claim: Reduce (max statistic) is on the Pareto front.
    assert result.reduce_on_pareto_front()

    # Reduce must dominate or match every fixed policy that spends at least as
    # much average retraining: no fixed policy with <= Reduce's average epochs
    # satisfies strictly more chips.
    for name, campaign in result.fixed_campaigns().items():
        if campaign.average_epochs <= reduce_max.average_epochs + 1e-9:
            assert campaign.fraction_meeting_constraint <= reduce_max.fraction_meeting_constraint + 1e-9, name

    # And Reduce achieves a high satisfaction rate at a fraction of the cost of
    # the largest fixed budget.
    heaviest_fixed = max(result.fixed_campaigns().values(), key=lambda c: c.average_epochs)
    assert reduce_max.average_epochs < heaviest_fixed.average_epochs
    assert reduce_max.fraction_meeting_constraint >= 0.75
