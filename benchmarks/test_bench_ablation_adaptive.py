"""Ablation A4: adaptive incremental retraining vs Reduce's profile-driven selection.

The adaptive baseline retrains each chip in small increments and stops as soon
as the accuracy constraint is met.  It needs no resilience analysis, but every
increment of every chip costs a full test-set evaluation, and that per-chip
loop cannot be amortised across chips (or across future production batches)
the way Reduce's one-off resilience profile can.  This benchmark quantifies
both sides: retraining epochs spent, constraint satisfaction, and the number
of per-chip evaluations.
"""

import pytest

from bench_utils import run_once
from repro.core import run_adaptive_campaign
from repro.core.reporting import campaign_summary_table


@pytest.fixture(scope="module")
def framework(fast_context, fast_profile):
    framework = fast_context.framework()
    framework.set_profile(fast_profile)
    return framework


def test_ablation_adaptive_vs_reduce(benchmark, framework, fast_context, fast_population):
    reduce_campaign = framework.run(fast_population, statistic="max")

    adaptive = run_once(
        benchmark,
        run_adaptive_campaign,
        framework,
        fast_population,
        increments=list(fast_context.preset.epoch_checkpoints),
    )
    adaptive_campaign = adaptive.campaign

    print("\nAblation A4: Reduce (profile-driven) vs adaptive incremental retraining")
    print(campaign_summary_table([reduce_campaign, adaptive_campaign]))
    print(f"adaptive per-chip test-set evaluations: total={adaptive.total_evaluations}, "
          f"avg={adaptive.average_evaluations:.1f} per chip")
    print("reduce per-chip test-set evaluations during step 3: 1 per chip "
          "(selection reads the pre-computed resilience profile)")

    # Both approaches must satisfy the constraint for the large majority of chips.
    assert adaptive_campaign.fraction_meeting_constraint >= 0.75
    assert reduce_campaign.fraction_meeting_constraint >= 0.75
    # The adaptive loop pays for its lack of a profile with repeated per-chip
    # evaluations: strictly more than one evaluation per chip on average.
    assert adaptive.average_evaluations > 1.0
    # Reduce's total retraining stays within a reasonable factor of the
    # adaptive oracle-style loop (it cannot be cheaper on every chip since it
    # uses the conservative max statistic, but it must not blow up).
    assert reduce_campaign.total_epochs <= 3.0 * max(adaptive_campaign.total_epochs, 1e-9) + 1.0
