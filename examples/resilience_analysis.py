#!/usr/bin/env python3
"""Resilience analysis of a DNN under permanent systolic-array faults (Fig. 2).

This example reproduces the two resilience views the Reduce framework builds
on (paper Fig. 2a/2b) and renders them as terminal plots:

* accuracy vs fault rate at several fixed retraining amounts, and
* retraining epochs required to reach target accuracies vs fault rate,
  with min/mean/max over repeated fault-map trials.

Run with::

    python examples/resilience_analysis.py             # fast preset
    python examples/resilience_analysis.py --smoke     # seconds
    python examples/resilience_analysis.py --save profile.json
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.experiments import ExperimentContext, fast_preset, run_fig2a, run_fig2b, smoke_preset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="use the tiny smoke preset")
    parser.add_argument("--save", type=Path, default=None, help="write the resilience profile as JSON")
    args = parser.parse_args()

    preset = smoke_preset() if args.smoke else fast_preset()
    print(f"== Resilience analysis (preset: {preset.name}) ==")
    context = ExperimentContext.from_preset(preset)
    print(f"clean accuracy of the pre-trained model: {context.clean_accuracy:.3f}\n")

    # Fig. 2a analogue: accuracy vs fault rate for fixed retraining amounts.
    print("[fig 2a] accuracy vs fault rate at fixed retraining amounts")
    fig2a = run_fig2a(context)
    print(fig2a.render())
    print()

    # Fig. 2b analogue: epochs required vs fault rate for target accuracies.
    print("[fig 2b] retraining epochs required vs fault rate (error bars = min/max over trials)")
    fig2b = run_fig2b(context)
    print(fig2b.render())
    print()
    print("numeric table (max over trials, the statistic Reduce uses):")
    for row in fig2b.rows():
        print(f"  target={row['target_accuracy']:.3f} fault_rate={row['fault_rate']:.2f} "
              f"epochs: min={row['min_epochs']:.2f} mean={row['mean_epochs']:.2f} max={row['max_epochs']:.2f}")

    # The same data drives Step 2 of the framework; it can be saved and reused.
    if args.save is not None:
        args.save.parent.mkdir(parents=True, exist_ok=True)
        args.save.write_text(json.dumps(fig2b.profile.to_dict(), indent=2))
        print(f"\nresilience profile written to {args.save}")
        print("reload it later with ResilienceProfile.from_dict(json.loads(path.read_text()))")


if __name__ == "__main__":
    main()
