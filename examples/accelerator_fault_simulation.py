#!/usr/bin/env python3
"""Exploring the accelerator substrate: fault maps, mapping, mitigation trade-offs.

This example does not involve the Reduce policy at all; it demonstrates the
lower layers of the library that the framework is built on:

* generating fault maps with different fault models,
* lowering DNN layers onto the systolic array and deriving FAP masks,
* comparing the mitigation baselines (FAP, FAM/SalvageDNN, FAT) in terms of
  accuracy, and PE-bypass in terms of throughput (the paper's §I motivation),
* the timing/energy model of the weight-stationary array.

Run with::

    python examples/accelerator_fault_simulation.py
"""

from __future__ import annotations

import numpy as np

from repro.accelerator import (
    ClusteredFaultModel,
    FaultMap,
    RandomFaultModel,
    SystolicArray,
    best_bypass_plan,
    bypass_slowdown,
    estimate_model_energy,
    estimate_model_timing,
    masked_weight_fraction,
    model_fault_masks,
    model_mapping,
)
from repro.data import make_class_template_images
from repro.mitigation import apply_fam, apply_fap, fault_aware_retrain
from repro.models import LeNet5
from repro.nn import clone_state_dict
from repro.training import Trainer, TrainingConfig, evaluate_accuracy


def main() -> None:
    rng_seed = 0
    print("== Accelerator fault simulation ==")

    # ------------------------------------------------------------------ data + model
    bundle = make_class_template_images(
        num_classes=10, train_per_class=40, test_per_class=20,
        image_size=12, noise_std=0.6, shift_pixels=1, seed=7,
    )
    model = LeNet5(input_shape=bundle.input_shape, num_classes=bundle.num_classes, seed=11)
    config = TrainingConfig(learning_rate=0.08, batch_size=40, weight_decay=1e-4, seed=rng_seed)
    print(f"pre-training LeNet-5 on {bundle.name} ...")
    Trainer(model, bundle.train, bundle.test, config).train(10.0)
    clean_accuracy = evaluate_accuracy(model, bundle.test)
    pretrained = clone_state_dict(model.state_dict())
    print(f"clean accuracy: {clean_accuracy:.3f}")

    # ------------------------------------------------------------------ fault maps
    array_rows = array_cols = 64
    print(f"\nsystolic array: {array_rows}x{array_cols} (weight-stationary)")
    random_map = RandomFaultModel().sample(array_rows, array_cols, 0.2, np.random.default_rng(1))
    clustered_map = ClusteredFaultModel(cluster_size=16).sample(array_rows, array_cols, 0.2, np.random.default_rng(1))
    print(f"random fault map:    {random_map}")
    print(f"clustered fault map: {clustered_map}")

    # ------------------------------------------------------------------ mapping
    array = SystolicArray(array_rows, array_cols, fault_map=random_map)
    print("\nlayer-to-array mapping (GEMM view and tile counts):")
    for mapping in model_mapping(model, array):
        print(f"  {mapping.layer_name:>22}: K={mapping.gemm.reduce_dim:<5} N={mapping.gemm.output_dim:<5} "
              f"tiles={mapping.num_tiles}")
    masks = model_fault_masks(model, array)
    print(f"fraction of weights mapped onto faulty PEs: {masked_weight_fraction(masks):.3f} "
          f"(PE fault rate {random_map.fault_rate:.3f})")

    # ------------------------------------------------------------------ mitigation comparison
    print("\nmitigation comparison at 20% faulty PEs:")
    model.load_state_dict(pretrained)
    apply_fap(model, random_map)
    fap_accuracy = evaluate_accuracy(model, bundle.test)
    print(f"  FAP  (prune only)          : {fap_accuracy:.3f}")

    model.load_state_dict(pretrained)
    fam = apply_fam(model, random_map)
    fam_accuracy = evaluate_accuracy(model, bundle.test)
    print(f"  FAM  (saliency mapping)    : {fam_accuracy:.3f} "
          f"(masked saliency reduced by {fam.saliency_saving:.0%})")

    model.load_state_dict(pretrained)
    fat = fault_aware_retrain(model, random_map, bundle, epochs=1.0, config=config)
    print(f"  FAT  (1 epoch retraining)  : {fat.final_accuracy:.3f}")
    print(f"  clean reference            : {clean_accuracy:.3f}")

    # ------------------------------------------------------------------ bypass baseline
    print("\nPE-bypass baseline (accuracy-preserving but slower):")
    sparse_map = FaultMap.random(array_rows, array_cols, 0.01, seed=3)
    sparse_array = SystolicArray(array_rows, array_cols, fault_map=sparse_map)
    plan = best_bypass_plan(sparse_map)
    slowdown = bypass_slowdown(model, sparse_array, bundle.input_shape)
    print(f"  at 1% faulty PEs: {plan.surviving_pe_fraction:.0%} of PEs usable, "
          f"latency {slowdown:.2f}x vs FAP's 1.00x")

    # ------------------------------------------------------------------ timing & energy
    model.load_state_dict(pretrained)
    timing = estimate_model_timing(model, array, bundle.input_shape, batch_size=1)
    energy = estimate_model_energy(model, array, bundle.input_shape, batch_size=1)
    print("\nper-inference cost model (full array):")
    print(f"  cycles: {timing.total_cycles:,}  latency: {timing.latency_ms:.3f} ms  "
          f"utilization: {timing.utilization:.1%}")
    print(f"  energy: {energy.total_nj / 1e3:.1f} uJ")


if __name__ == "__main__":
    main()
