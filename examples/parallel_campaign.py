#!/usr/bin/env python3
"""Sharded, resumable retraining campaigns with the campaign engine.

The Step-3 workload of the Reduce framework — fault-aware retraining of one
pre-trained DNN for every chip in a production lot — is embarrassingly
parallel per chip.  This example runs the same campaign three ways and shows
that the results are identical:

1. serially (``jobs=1``, the legacy code path),
2. sharded across worker processes (``jobs=N``),
3. resumed from a persistent JSONL store (every chip skipped).

Run with::

    python examples/parallel_campaign.py --jobs 4 --chips 24
    python examples/parallel_campaign.py --smoke --chips 6

The equivalent CLI invocation is::

    repro-reduce campaign --preset fast --chips 24 --jobs 4
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.campaign import CampaignEngine
from repro.core.reporting import campaign_summary_table
from repro.experiments import ExperimentContext, build_population, fast_preset, smoke_preset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="use the tiny smoke preset")
    parser.add_argument("--chips", type=int, default=None, help="number of faulty chips")
    parser.add_argument("--jobs", type=int, default=4, help="worker processes for the sharded run")
    parser.add_argument(
        "--campaign-dir",
        type=Path,
        default=None,
        help="store directory (default: a temporary directory)",
    )
    args = parser.parse_args()

    preset = smoke_preset() if args.smoke else fast_preset()
    print(f"== Parallel campaign engine (preset: {preset.name}) ==")
    context = ExperimentContext.from_preset(preset)
    population = build_population(context, num_chips=args.chips)
    print(f"population: {population!r}")

    with tempfile.TemporaryDirectory() as tmp:
        store_base = args.campaign_dir if args.campaign_dir is not None else Path(tmp)

        print("\n[1/3] serial run (jobs=1)...")
        serial_engine = CampaignEngine(context, jobs=1)
        serial = serial_engine.run_reduce(population, statistic="max")
        print(f"      {serial_engine.last_report.describe()}")

        print(f"\n[2/3] sharded run (jobs={args.jobs}), persisted to {store_base}...")
        parallel_engine = CampaignEngine(context, jobs=args.jobs, store_base=store_base)
        parallel = parallel_engine.run_reduce(population, statistic="max")
        print(f"      {parallel_engine.last_report.describe()}")
        print(f"      bit-identical to serial: {parallel.results == serial.results}")

        print("\n[3/3] resumed run (all chips already in the store)...")
        resumed_engine = CampaignEngine(context, jobs=args.jobs, store_base=store_base)
        resumed = resumed_engine.run_reduce(population, statistic="max")
        report = resumed_engine.last_report
        print(f"      {report.describe()}")
        print(f"      skipped {report.skipped}/{report.total_chips} chips, "
              f"results identical: {resumed.results == serial.results}")

    print()
    print(campaign_summary_table([serial]))


if __name__ == "__main__":
    main()
