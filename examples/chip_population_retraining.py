#!/usr/bin/env python3
"""Retraining a DNN for a population of faulty chips (Fig. 3 comparison).

This example mirrors the paper's headline experiment: a batch of fabricated
chips, each with its own random permanent-fault map, must all run the same
pre-trained DNN while meeting a user-defined accuracy constraint.  It compares

* the Reduce framework with the max statistic (proposed, Fig. 3a),
* the Reduce framework with the mean statistic (under-training risk, Fig. 3b),
* fixed-policy retraining at several budgets (state of the art, Fig. 3c-e),

and prints the Fig. 3f style summary plus the Pareto front.

Run with::

    python examples/chip_population_retraining.py --chips 24
    python examples/chip_population_retraining.py --smoke --chips 6
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.analysis import histogram
from repro.experiments import ExperimentContext, build_population, fast_preset, run_fig3, smoke_preset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="use the tiny smoke preset")
    parser.add_argument("--chips", type=int, default=None, help="number of faulty chips")
    parser.add_argument("--output", type=Path, default=None, help="write the summary as JSON")
    args = parser.parse_args()

    preset = smoke_preset() if args.smoke else fast_preset()
    print(f"== Chip-population retraining (preset: {preset.name}) ==")
    context = ExperimentContext.from_preset(preset)

    population = build_population(context, num_chips=args.chips)
    rates = population.fault_rates()
    print(f"\nchip population: {len(population)} chips on a "
          f"{preset.array_rows}x{preset.array_cols} array")
    print(histogram(rates, bins=6, title="fault-rate distribution across chips"))

    print("\nrunning all retraining policies (this is the expensive part)...")
    result = run_fig3(context, population=population)

    print(f"\naccuracy constraint: {result.target_accuracy:.3f} "
          f"(clean accuracy {result.clean_accuracy:.3f})")
    print()
    print(result.summary_table())
    print()
    print(result.render_scatter())
    print()
    print("Pareto-optimal policies (min avg epochs, max % meeting constraint):")
    for name in result.pareto_policies():
        campaign = result.campaign(name)
        print(f"  {name:>14}: {campaign.average_epochs:.3f} epochs/chip, "
              f"{campaign.percent_meeting_constraint:.1f}% meeting constraint")
    print(f"\nReduce (max statistic) on the Pareto front: {result.reduce_on_pareto_front()}")

    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(result.to_dict(), indent=2))
        print(f"\nsummary written to {args.output}")


if __name__ == "__main__":
    main()
