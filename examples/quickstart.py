#!/usr/bin/env python3
"""Quickstart: run the complete Reduce flow on a small synthetic workload.

This example walks through the three steps of the framework (Fig. 1 of the
paper) end to end:

1. pre-train a DNN and analyse its resilience to permanent faults,
2. select a per-chip retraining amount from the resilience profile,
3. retrain the DNN for each faulty chip and compare against the fixed-policy
   baseline.

Run it with::

    python examples/quickstart.py            # ~1 minute on a laptop CPU
    python examples/quickstart.py --smoke    # a few seconds (tiny models)
"""

from __future__ import annotations

import argparse

from repro.core import ChipPopulation, campaign_summary_table
from repro.experiments import ExperimentContext, fast_preset, smoke_preset
from repro.utils.rng import derive_seed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="use the tiny smoke preset")
    parser.add_argument("--chips", type=int, default=12, help="number of faulty chips to retrain for")
    args = parser.parse_args()

    preset = smoke_preset() if args.smoke else fast_preset()
    print(f"== Reduce quickstart (preset: {preset.name}) ==")
    print(f"model: {preset.model.name}, array: {preset.array_rows}x{preset.array_cols}")

    # ------------------------------------------------------------------ setup
    # The experiment context bundles the Fig. 1 inputs: a pre-trained DNN, a
    # dataset and the systolic-array description.
    print("\n[setup] generating data and pre-training the model...")
    context = ExperimentContext.from_preset(preset)
    framework = context.framework()
    print(f"[setup] clean accuracy: {context.clean_accuracy:.3f}")
    print(f"[setup] accuracy constraint: {framework.target_accuracy:.3f} "
          f"({preset.constraint_drop:.0%} below clean)")

    # ---------------------------------------------------------------- step 1
    print("\n[step 1] resilience analysis (fault-injection + progressive retraining)...")
    profile = framework.analyze_resilience()
    print(f"[step 1] analysed fault rates: {profile.fault_rates.tolist()}")
    print(f"[step 1] retraining checkpoints: {profile.epoch_checkpoints.tolist()}")
    no_retraining = profile.accuracy_vs_fault_rate(0.0, "mean")
    full_retraining = profile.accuracy_vs_fault_rate(profile.max_epochs, "mean")
    for rate, before, after in zip(profile.fault_rates, no_retraining, full_retraining):
        print(f"    fault rate {rate:.2f}: accuracy {before:.3f} (no retraining) "
              f"-> {after:.3f} ({profile.max_epochs:g} epochs)")

    # ---------------------------------------------------------------- step 2
    print("\n[step 2] resilience-driven retraining-amount selection...")
    chips = ChipPopulation.generate(
        count=args.chips,
        rows=preset.array_rows,
        cols=preset.array_cols,
        fault_rates=preset.chip_fault_rate_range,
        seed=derive_seed(preset.seed, "quickstart-chips"),
    )
    amounts = framework.select_retraining_amounts(chips)
    for chip in chips:
        print(f"    {chip.chip_id}: fault rate {chip.fault_rate:.3f} -> "
              f"{amounts[chip.chip_id]:.2f} retraining epochs")

    # ---------------------------------------------------------------- step 3
    print("\n[step 3] fault-aware retraining per chip (Reduce vs fixed policy)...")
    reduce_campaign = framework.run(chips, statistic="max")
    fixed_campaign = framework.run_fixed_policy(chips, epochs=max(preset.fixed_policy_epochs))

    print()
    print(campaign_summary_table([reduce_campaign, fixed_campaign]))
    saving = 1.0 - reduce_campaign.total_epochs / max(fixed_campaign.total_epochs, 1e-9)
    print(f"\nReduce meets the constraint for {reduce_campaign.percent_meeting_constraint:.0f}% "
          f"of chips while spending {saving:.0%} less total retraining than the "
          f"fixed {max(preset.fixed_policy_epochs):g}-epoch policy.")


if __name__ == "__main__":
    main()
